//! The program interpreter: executes IR programs on the modelled machine,
//! accumulating per-PE cycle counts and feeding the coherence oracle.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use ccdp_dist::{chunks, doall_range_for_pe, Layout};
use ccdp_ir::{
    cond_core, Affine, ArrayId, ArrayRef, Assign, CmpOp, Cond, Epoch, EpochKind, Loop, LoopId,
    LoopKind, PrefetchKind, PrefetchStmt, Program, ProgramItem, RefId, Stmt, VarEnv,
};
use ccdp_prefetch::Handling;

use crate::cache::Hit;
use crate::coherence::{backend_for, CoherenceBackend};
use crate::compiled::{
    compile_loop, AccessKind, CAssign, CompileCtx, CompiledBody, CRead, CStmt, SlotSpec,
    SlotState,
};
use crate::config::{MachineConfig, Scheme, SimAbort, SimOptions};
use crate::faults::FaultEngine;
use crate::mem::Memory;
use crate::metrics::{CycleCategory, EpochCycles, EventTrace, MemEvent, TraceEventKind};
use crate::pe::Pe;
use crate::result::{OracleReport, ShardStats, SimResult, StaleReadExample};

/// Loaded-read values of one compiled statement live in a stack buffer of
/// this many slots; statements with more reads (validator-legal but unseen
/// in practice) fall back to the PE's scratch vector.
const READ_BUF: usize = 12;

/// Snapshot of one loop header, for vector-prefetch section evaluation.
#[derive(Clone, Debug)]
struct LoopHeader {
    var: ccdp_ir::VarId,
    lo: Affine,
    hi: Affine,
    step: i64,
    kind: LoopKind,
    align: Option<ArrayId>,
}

/// Executes one program under one scheme on one machine configuration.
pub struct Simulator<'p> {
    program: &'p Program,
    layout: Layout,
    pub(crate) cfg: MachineConfig,
    scheme: Scheme,
    opts: SimOptions,
    pub(crate) mem: Memory,
    pub(crate) pes: Vec<Pe>,
    env: VarEnv,
    phase: u32,
    pub(crate) oracle: OracleReport,
    extrapolated: bool,
    loop_headers: HashMap<LoopId, LoopHeader>,
    /// Subscripts of every read reference (vector prefetches name targets by
    /// `RefId`).
    ref_index: HashMap<RefId, (ArrayId, Vec<Affine>)>,
    /// FLOP cost per assignment, keyed by the write reference id.
    flops: HashMap<RefId, u32>,
    /// BASE-scheme CRAFT local-access overhead per array (depends on the
    /// array's distribution kind).
    craft_cost: Vec<u64>,
    coords: Vec<i64>,
    /// Per-epoch cycle accounting, in first-execution order.
    epochs: Vec<EpochCycles>,
    /// Epoch id → index into `epochs`.
    epoch_slots: HashMap<u32, usize>,
    /// Slot all cycle charges currently accumulate into.
    cur_epoch: Option<usize>,
    /// Pseudo-slot for Repeat extrapolation cycles.
    extrap_slot: Option<usize>,
    trace: EventTrace,
    /// Fault injectors (`None` when the plan injects nothing, which keeps
    /// fault-free runs byte-identical to a build without the subsystem).
    pub(crate) faults: Option<FaultEngine>,
    /// The coherence backend executing this scheme's shared accesses. Moved
    /// out (`Option::take`) for the duration of each dispatched access so
    /// the backend can borrow the simulator mutably; always `Some` between
    /// accesses.
    backend: Option<Box<dyn CoherenceBackend>>,
    /// Source epoch currently executing (targeted fault injection).
    cur_epoch_id: Option<u32>,
    /// Compiled loop bodies, keyed by loop id (the scheme — the other half
    /// of the cache key — is fixed per simulator). Reused across epochs,
    /// `Repeat` iterations, and PEs.
    compiled: HashMap<LoopId, Rc<CompiledBody<'p>>>,
    /// Pool of slot-state frames, recycled across loop entries so steady
    /// state allocates nothing.
    frames: Vec<Vec<SlotState>>,
    /// Run loops through the reference tree walker instead of the compiled
    /// trace (`SimOptions::force_treewalk`; `ccdp_core::EnvOverrides` sets
    /// it from `CCDP_FORCE_TREEWALK=1`).
    treewalk: bool,
    /// Interpreter steps executed (loop iterations across all PEs and both
    /// execution paths). Drives `SimOptions::step_budget` and paces the
    /// wall-clock deadline check.
    steps: u64,
    /// Set once a budget or deadline trips; every execution loop checks it
    /// and unwinds, so the abort reaches `try_run` in O(program size).
    abort: Option<SimAbort>,
    /// Any budget or deadline configured (precomputed so the fault-free,
    /// budget-free hot path pays one predictable branch per iteration).
    budgeted: bool,
    /// Shared-memory access log, present only inside epoch-shard workers:
    /// the cache lines this PE block touched and wrote, consumed by the
    /// cross-block conflict check and the deferred owner-cache patches at
    /// the merge barrier. `None` (always, outside workers) keeps the serial
    /// path at one predictable branch per shared access.
    shard: Option<ShardLog>,
    /// Cached static shard-independence verdicts (`analysis::shard`), one
    /// per DOALL loop id: `true` = proven `Disjoint` at one-PE-per-block
    /// granularity, hence for every contiguous coarser partition.
    shard_verdicts: HashMap<LoopId, bool>,
    /// Epoch-sharding accounting, returned on `SimResult::shard`.
    shard_stats: ShardStats,
}

/// Per-block shared-memory access log for the epoch-sharded parallel path.
///
/// `written_addrs` keeps exact word addresses so the merge can copy each
/// written word's final (value, version) pair and patch out-of-block owner
/// caches; it is collected unconditionally. The line-granular [`LineLog`]
/// exists only on the *dynamic* path — when the epoch was statically proven
/// disjoint (`analysis::shard`), the merge-time conflict scan is skipped,
/// so nothing needs logging.
struct ShardLog {
    lo_pe: usize,
    hi_pe: usize,
    line_words: u64,
    lines: Option<LineLog>,
    written_addrs: HashSet<usize>,
}

/// Line-granular access log consumed by the merge-time conflict scan.
///
/// Conflict granularity is the cache **line**: demand fills and prefetches
/// move whole lines, so any cross-block write/read interaction surfaces as
/// a line-set intersection. `written_lines ⊆ touched_lines` by
/// construction.
#[derive(Default)]
struct LineLog {
    touched_lines: HashSet<u64>,
    written_lines: HashSet<u64>,
}

impl ShardLog {
    #[inline]
    fn contains(&self, pe: usize) -> bool {
        (self.lo_pe..self.hi_pe).contains(&pe)
    }
}

/// Everything a shard worker needs to assemble a block-local `Simulator`
/// inside its own thread. `Simulator` itself is not `Send` (its compiled
/// cache holds `Rc`s and the backend box is unconstrained), so the fork
/// ships this plain-data seed across and the worker builds the simulator
/// in place; [`BlockOut`] carries the results back the same way.
struct BlockSeed<'p> {
    program: &'p Program,
    l: &'p Loop,
    lo: i64,
    hi: i64,
    per_iter: u64,
    layout: Layout,
    cfg: MachineConfig,
    scheme: Scheme,
    opts: SimOptions,
    mem: Memory,
    /// Full-length PE vector: clones of the block's PEs, cheap
    /// placeholders elsewhere (never executed; see [`Pe::placeholder`]).
    pes: Vec<Pe>,
    env: VarEnv,
    phase: u32,
    faults: Option<FaultEngine>,
    loop_headers: HashMap<LoopId, LoopHeader>,
    ref_index: HashMap<RefId, (ArrayId, Vec<Affine>)>,
    flops: HashMap<RefId, u32>,
    craft_cost: Vec<u64>,
    cur_epoch_id: Option<u32>,
    trace_on: bool,
    lo_pe: usize,
    hi_pe: usize,
    /// Keep the line-granular access log for the merge-time conflict scan
    /// (`false` when the epoch is statically proven disjoint).
    log_lines: bool,
}

/// A shard worker's results: final PE/memory/fault state for its block plus
/// the access log the merge needs.
struct BlockOut {
    lo_pe: usize,
    hi_pe: usize,
    pes: Vec<Pe>,
    mem: Memory,
    faults: Option<FaultEngine>,
    oracle: OracleReport,
    epoch: EpochCycles,
    trace: EventTrace,
    steps: u64,
    /// A sliced cycle/step budget tripped inside this block (the caller
    /// discards all block state and reruns serially to reproduce the exact
    /// serial abort).
    abort: Option<SimAbort>,
    lines: Option<LineLog>,
    written_addrs: HashSet<usize>,
}

/// Simulate one contiguous PE block of a static DOALL in isolation, on a
/// clone of the pre-epoch machine state. Intra-block PEs run in ascending
/// order on the worker's own memory image — literally the serial schedule
/// restricted to the block — so a merge that detects no cross-block line
/// intersection reproduces the serial run byte for byte.
fn run_block<'p>(seed: BlockSeed<'p>) -> BlockOut {
    let n_pes = seed.cfg.n_pes;
    let line_words = seed.cfg.line_words as u64;
    let backend = Some(backend_for(&seed.scheme, n_pes));
    // `EventTrace::new` allocates lazily, so an effectively unbounded
    // capacity costs nothing when few events arrive; the worker must never
    // wrap its ring, because the master replays events in block order and
    // lets *its* ring apply the capacity policy.
    let trace_cap = if seed.trace_on { usize::MAX } else { 0 };
    let mut sim = Simulator {
        program: seed.program,
        layout: seed.layout,
        cfg: seed.cfg,
        scheme: seed.scheme,
        opts: seed.opts,
        mem: seed.mem,
        pes: seed.pes,
        env: seed.env,
        phase: seed.phase,
        oracle: OracleReport::default(),
        extrapolated: false,
        loop_headers: seed.loop_headers,
        ref_index: seed.ref_index,
        flops: seed.flops,
        craft_cost: seed.craft_cost,
        coords: Vec::with_capacity(4),
        epochs: vec![EpochCycles::new("(shard)", n_pes)],
        epoch_slots: HashMap::new(),
        cur_epoch: Some(0),
        extrap_slot: None,
        trace: EventTrace::new(trace_cap),
        faults: seed.faults,
        backend,
        cur_epoch_id: seed.cur_epoch_id,
        compiled: HashMap::new(),
        frames: Vec::new(),
        treewalk: false,
        steps: 0,
        abort: None,
        // Budget-sliced workers check their own PEs' cycle counters (which
        // evolve exactly as in the serial schedule) and the step budget
        // remaining at the fork; the master pre-sliced `seed.opts`.
        budgeted: seed.opts.cycle_budget.is_some()
            || seed.opts.step_budget.is_some()
            || seed.opts.wall_deadline.is_some(),
        shard: Some(ShardLog {
            lo_pe: seed.lo_pe,
            hi_pe: seed.hi_pe,
            line_words,
            lines: seed.log_lines.then(LineLog::default),
            written_addrs: HashSet::new(),
        }),
        shard_verdicts: HashMap::new(),
        shard_stats: ShardStats::default(),
    };
    let l = seed.l;
    let cb = sim.compiled_body(l);
    for pe in seed.lo_pe..seed.hi_pe {
        if sim.abort.is_some() {
            break;
        }
        let range = match l.align {
            Some(aid) => ccdp_dist::aligned_range_for_pe(
                &sim.layout,
                sim.program.array(aid),
                seed.lo,
                seed.hi,
                l.step,
                pe,
            ),
            None => doall_range_for_pe(seed.lo, seed.hi, l.step, pe, n_pes),
        };
        if let Some(r) = range {
            sim.run_doall_range(pe, l, r.lo, r.hi, seed.per_iter, Some(&cb));
        }
    }
    let shard = sim.shard.take().expect("worker shard log present");
    BlockOut {
        lo_pe: seed.lo_pe,
        hi_pe: seed.hi_pe,
        pes: sim.pes,
        mem: sim.mem,
        faults: sim.faults,
        oracle: sim.oracle,
        epoch: sim.epochs.pop().expect("worker epoch slot present"),
        trace: sim.trace,
        steps: sim.steps,
        abort: sim.abort,
        lines: shard.lines,
        written_addrs: shard.written_addrs,
    }
}

impl<'p> Simulator<'p> {
    /// Build a simulator. `program` must be the transformed program when the
    /// scheme is `Ccdp` (its plan indexes the same `RefId` space).
    pub fn new(
        program: &'p Program,
        layout: Layout,
        cfg: MachineConfig,
        scheme: Scheme,
        opts: SimOptions,
    ) -> Simulator<'p> {
        assert_eq!(
            layout.n_pes(),
            cfg.n_pes,
            "layout and machine config disagree on PE count"
        );
        let mem = Memory::new(program, &layout);
        let pes = (0..cfg.n_pes).map(|i| Pe::new(i, &cfg)).collect();
        let craft_cost: Vec<u64> = program
            .arrays
            .iter()
            .map(|a| match layout.distribution(a.id) {
                ccdp_dist::Distribution::GeneralizedBlock { .. } => cfg.craft_generalized,
                _ => cfg.craft_local,
            })
            .collect();
        let mut loop_headers = HashMap::new();
        let mut ref_index = HashMap::new();
        let mut flops = HashMap::new();
        let mut seen = std::collections::HashSet::new();
        for e in program.epochs() {
            if !seen.insert(e.id) {
                continue;
            }
            index_stmts(&e.stmts, &mut loop_headers, &mut ref_index, &mut flops);
        }
        let faults =
            (!opts.faults.is_none()).then(|| FaultEngine::new(opts.faults, cfg.n_pes));
        let backend = Some(backend_for(&scheme, cfg.n_pes));
        // `CCDP_FORCE_TREEWALK` is no longer read here: the core crate's
        // `EnvOverrides` parses it (with validation) into
        // `SimOptions::force_treewalk`.
        let treewalk = opts.force_treewalk;
        let budgeted = opts.cycle_budget.is_some()
            || opts.step_budget.is_some()
            || opts.wall_deadline.is_some();
        Simulator {
            program,
            layout,
            cfg,
            scheme,
            opts,
            mem,
            pes,
            env: VarEnv::new(program.var_names.len()),
            phase: 0,
            oracle: OracleReport::default(),
            extrapolated: false,
            loop_headers,
            ref_index,
            flops,
            craft_cost,
            coords: Vec::with_capacity(4),
            epochs: Vec::new(),
            epoch_slots: HashMap::new(),
            cur_epoch: None,
            extrap_slot: None,
            trace: EventTrace::new(opts.trace_capacity),
            faults,
            backend,
            cur_epoch_id: None,
            compiled: HashMap::new(),
            frames: Vec::new(),
            treewalk,
            steps: 0,
            abort: None,
            budgeted,
            shard: None,
            shard_verdicts: HashMap::new(),
            shard_stats: ShardStats::default(),
        }
    }

    /// Run to completion, panicking if a budget or deadline aborts the run.
    /// Callers that configure budgets must use [`Simulator::try_run`].
    pub fn run(self) -> SimResult {
        match self.try_run() {
            Ok(r) => r,
            Err(a) => panic!("simulation aborted without a budget-aware caller: {a}"),
        }
    }

    /// Run to completion, or abort with a structured [`SimAbort`] when a
    /// cycle/step budget or the wall-clock deadline trips. Both execution
    /// paths (compiled trace and tree walker) check budgets at every loop
    /// iteration, so a runaway program terminates promptly; the partially
    /// simulated state is discarded.
    pub fn try_run(mut self) -> Result<SimResult, SimAbort> {
        let items = self.program.items.as_slice();
        self.exec_items(items);
        if let Some(a) = self.abort.take() {
            return Err(a);
        }
        let cycles = self.global_now();
        Ok(SimResult {
            scheme: self.scheme.name(),
            cycles,
            per_pe: self.pes.iter().map(|p| p.stats).collect(),
            oracle: self.oracle,
            memory: self.mem,
            phases: self.phase,
            extrapolated: self.extrapolated,
            epochs: self.epochs,
            trace: self.trace,
            shard: self.shard_stats,
        })
    }

    // -- run budgets -------------------------------------------------------

    /// One interpreter step (a loop iteration on `pe`). Returns `false` —
    /// and records the abort — once a budget or the deadline is exhausted;
    /// every execution loop bails out on `false`. With no budgets configured
    /// this is a counter increment and one predictable branch.
    #[inline]
    fn tick(&mut self, pe: usize) -> bool {
        self.steps += 1;
        if !self.budgeted {
            return true;
        }
        self.tick_slow(pe)
    }

    #[cold]
    fn tick_slow(&mut self, pe: usize) -> bool {
        if self.abort.is_some() {
            return false;
        }
        if let Some(b) = self.opts.cycle_budget {
            let cycles = self.pes[pe].now;
            if cycles > b {
                self.abort =
                    Some(SimAbort::BudgetExceeded { pe, cycles, steps: self.steps });
                return false;
            }
        }
        if let Some(b) = self.opts.step_budget {
            if self.steps > b {
                let cycles = self.pes[pe].now;
                self.abort =
                    Some(SimAbort::BudgetExceeded { pe, cycles, steps: self.steps });
                return false;
            }
        }
        if let Some(d) = self.opts.wall_deadline {
            // Sampling the host clock every iteration would dominate the
            // simulation; every few thousand steps bounds the overshoot to
            // well under a millisecond.
            if self.steps.is_multiple_of(4096) && std::time::Instant::now() >= d {
                self.abort = Some(SimAbort::WallTimeout { pe, steps: self.steps });
                return false;
            }
        }
        true
    }

    // -- cycle accounting --------------------------------------------------

    /// Advance a PE's cycle counter, attributing the cycles to `cat` in the
    /// PE's breakdown and the current epoch slot. Every cycle the simulator
    /// charges goes through here, which is what makes the invariant
    /// `breakdown.total() == pe.now` hold exactly.
    #[inline]
    pub(crate) fn charge(&mut self, pe: usize, cat: CycleCategory, cycles: u64) {
        let p = &mut self.pes[pe];
        p.now += cycles;
        p.stats.breakdown.charge(cat, cycles);
        if let Some(slot) = self.cur_epoch {
            self.epochs[slot].per_pe[pe].charge(cat, cycles);
        }
    }

    /// Charge `a * b` cycles with saturating arithmetic, clamped so the
    /// PE's counter cannot overflow. Used by the batched loop-entry charges,
    /// where a runaway synthesized trip count could otherwise wrap `u64`
    /// before the budget check gets a chance to abort the run. The clamp
    /// keeps `breakdown.total() == pe.now` exact even at saturation.
    fn charge_saturating(&mut self, pe: usize, cat: CycleCategory, a: u64, b: u64) {
        let room = u64::MAX - self.pes[pe].now;
        let amt = a.saturating_mul(b).min(room);
        self.charge(pe, cat, amt);
    }

    /// Charge the same amount to every PE.
    fn charge_all(&mut self, cat: CycleCategory, cycles: u64) {
        for pe in 0..self.pes.len() {
            self.charge(pe, cat, cycles);
        }
    }

    /// Record a memory-system event (no-op unless tracing is enabled;
    /// recording never changes cycle counts).
    #[inline]
    pub(crate) fn trace_event(&mut self, pe: usize, kind: TraceEventKind, addr: usize) {
        if self.trace.enabled() {
            self.trace.record(MemEvent {
                cycle: self.pes[pe].now,
                pe: pe as u32,
                phase: self.phase,
                kind,
                addr: addr as u64,
            });
        }
    }

    // -- epoch-shard access logging ----------------------------------------

    /// Log a shared-memory read/fill of `addr`'s line (shard workers only;
    /// a no-op — one predictable branch — on the serial path).
    #[inline]
    fn shard_touch(&mut self, addr: usize) {
        if let Some(s) = self.shard.as_mut() {
            if let Some(ll) = s.lines.as_mut() {
                ll.touched_lines.insert(addr as u64 / s.line_words);
            }
        }
    }

    /// Log a shared-memory write of `addr` (shard workers only): the line
    /// counts as touched *and* written, and the exact word address is kept
    /// for the merge's final-state copy and owner-cache patches.
    #[inline]
    fn shard_note_write(&mut self, addr: usize) {
        if let Some(s) = self.shard.as_mut() {
            if let Some(ll) = s.lines.as_mut() {
                let line = addr as u64 / s.line_words;
                ll.touched_lines.insert(line);
                ll.written_lines.insert(line);
            }
            s.written_addrs.insert(addr);
        }
    }

    /// Accounting slot for a source epoch (created on first execution).
    fn epoch_slot(&mut self, id: u32, label: &str) -> usize {
        if let Some(&s) = self.epoch_slots.get(&id) {
            return s;
        }
        let s = self.epochs.len();
        self.epochs.push(EpochCycles::new(label, self.cfg.n_pes));
        self.epoch_slots.insert(id, s);
        s
    }

    fn global_now(&self) -> u64 {
        self.pes.iter().map(|p| p.now).max().unwrap_or(0)
    }

    /// Does the current backend execute explicit prefetch statements and
    /// pipelined prefetches? (Only the plan-directed CCDP backend does.)
    fn prefetching(&self) -> bool {
        self.backend.as_ref().is_some_and(|b| b.executes_prefetches())
    }

    pub(crate) fn handling_of(&self, r: RefId) -> Handling {
        match &self.scheme {
            Scheme::Ccdp { plan } | Scheme::InvalidateOnly { plan } => plan.handling_of(r),
            _ => Handling::Normal,
        }
    }

    // -- backend dispatch --------------------------------------------------

    /// One shared read through the coherence backend. `craft` is the
    /// array's CRAFT local-access overhead (BASE backend only).
    pub(crate) fn backend_read(&mut self, pe: usize, rid: RefId, addr: usize, craft: u64) -> f64 {
        let mut b = self.backend.take().expect("backend re-entered");
        let v = b.read_shared(self, pe, rid, addr, craft);
        self.backend = Some(b);
        v
    }

    /// One shared write through the coherence backend.
    pub(crate) fn backend_write(&mut self, pe: usize, addr: usize, craft_local: u64, v: f64) {
        let mut b = self.backend.take().expect("backend re-entered");
        b.write_shared(self, pe, addr, craft_local, v);
        self.backend = Some(b);
    }

    // -- program structure ---------------------------------------------

    fn exec_items(&mut self, items: &'p [ProgramItem]) {
        for item in items {
            if self.abort.is_some() {
                return;
            }
            match item {
                ProgramItem::Epoch(e) => self.exec_epoch(e),
                ProgramItem::Call(r) => {
                    let prog = self.program;
                    self.exec_items(&prog.routine(*r).items);
                }
                ProgramItem::Repeat { count, body } => self.exec_repeat(*count, body),
            }
        }
    }

    fn exec_repeat(&mut self, count: u32, body: &'p [ProgramItem]) {
        let sample = self.opts.repeat_sample.unwrap_or(u32::MAX).max(2);
        if count <= sample {
            for _ in 0..count {
                self.exec_items(body);
                if self.abort.is_some() {
                    return;
                }
            }
            return;
        }
        let mut marks = Vec::with_capacity(sample as usize + 1);
        marks.push(self.global_now());
        for _ in 0..sample {
            self.exec_items(body);
            if self.abort.is_some() {
                return; // partial sample: no extrapolation from aborted runs
            }
            marks.push(self.global_now());
        }
        // Steady-state per-iteration delta: skip the first (cold caches).
        let steady = (marks[sample as usize] - marks[1]) / (sample as u64 - 1);
        let extra = steady * (count - sample) as u64;
        // Extrapolated cycles accumulate in a pseudo-epoch of their own so
        // the per-epoch accounting still sums to the per-PE totals.
        let slot = match self.extrap_slot {
            Some(s) => s,
            None => {
                let s = self.epochs.len();
                self.epochs.push(EpochCycles::new("(extrapolated)", self.cfg.n_pes));
                self.extrap_slot = Some(s);
                s
            }
        };
        let prev = self.cur_epoch.replace(slot);
        self.charge_all(CycleCategory::Extrapolated, extra);
        self.cur_epoch = prev;
        self.extrapolated = true;
    }

    fn exec_epoch(&mut self, e: &'p Epoch) {
        let slot = self.epoch_slot(e.id.0, &e.label);
        let prev = self.cur_epoch.replace(slot);
        let prev_id = self.cur_epoch_id.replace(e.id.0);
        match e.kind {
            EpochKind::Serial => {
                self.exec_stmts_on_pe(0, &e.stmts);
                self.barrier();
            }
            EpochKind::Parallel => self.exec_wrapper(&e.stmts),
        }
        self.cur_epoch_id = prev_id;
        self.cur_epoch = prev;
    }

    /// Execute the wrapper region of a parallel epoch: serial loops and
    /// branches run redundantly (index work only), prefetch statements run
    /// per-PE, the DOALL runs as a barrier phase.
    fn exec_wrapper(&mut self, stmts: &'p [Stmt]) {
        for s in stmts {
            if self.abort.is_some() {
                return;
            }
            match s {
                Stmt::Loop(l) if l.kind.is_doall() => self.exec_doall(l),
                Stmt::Loop(l) => {
                    let lo = l.lo.eval(&self.env);
                    let hi = l.hi.eval(&self.env);
                    let mut v = lo;
                    while v <= hi {
                        if !self.tick(0) {
                            break;
                        }
                        self.env.set(l.var, v);
                        self.charge_all(CycleCategory::LoopOverhead, self.cfg.loop_overhead);
                        self.exec_wrapper(&l.body);
                        v += l.step;
                    }
                    self.env.unset(l.var);
                }
                Stmt::If(i) => {
                    self.charge_all(CycleCategory::LoopOverhead, 1);
                    if self.eval_cond(&i.cond) {
                        self.exec_wrapper(&i.then_branch);
                    } else {
                        self.exec_wrapper(&i.else_branch);
                    }
                }
                Stmt::Prefetch(pf) => {
                    if self.prefetching() {
                        for pe in 0..self.cfg.n_pes {
                            self.exec_prefetch(pe, pf);
                        }
                    }
                }
                Stmt::Assign(_) => {
                    unreachable!("validator forbids assignments in wrapper code")
                }
            }
        }
    }

    fn exec_doall(&mut self, l: &'p Loop) {
        let lo = l.lo.eval(&self.env);
        let hi = l.hi.eval(&self.env);
        // Parallel-loop startup, charged once per DOALL instance (= per
        // barrier phase): CRAFT's `doshared` setup vs the CCDP codes'
        // direct iteration assignment (paper §5.2).
        let (setup, per_iter) = match self.scheme {
            Scheme::Sequential => (0, 0),
            Scheme::Base => (self.cfg.base_epoch_overhead, self.cfg.base_doshared_iter),
            // The CCDP codes' direct iteration assignment; the
            // invalidate-only baseline and the hardware-coherent machines
            // run the same manually scheduled loops.
            Scheme::Ccdp { .. } | Scheme::InvalidateOnly { .. } | Scheme::Mesi | Scheme::Dragon => {
                (self.cfg.ccdp_epoch_overhead, 0)
            }
        };
        self.charge_all(CycleCategory::EpochSetup, setup);
        let cb = (!self.treewalk).then(|| self.compiled_body(l));
        match l.kind {
            LoopKind::DoAllStatic => {
                if !self.exec_doall_static_sharded(l, lo, hi, per_iter) {
                    self.exec_doall_static_serial(l, lo, hi, per_iter, cb.as_deref());
                }
            }
            LoopKind::DoAllDynamic { chunk } => {
                for c in chunks(lo, hi, l.step, chunk) {
                    if self.abort.is_some() {
                        break;
                    }
                    // Next chunk goes to the earliest-available PE.
                    let pe = (0..self.cfg.n_pes)
                        .min_by_key(|&p| self.pes[p].now)
                        .unwrap();
                    self.charge(pe, CycleCategory::SchedOverhead, self.cfg.dynamic_chunk_overhead);
                    self.run_doall_range(pe, l, c.lo, c.hi, per_iter, cb.as_deref());
                }
            }
            LoopKind::Serial => unreachable!(),
        }
        self.env.unset(l.var);
        self.barrier();
    }

    /// The serial schedule of a static DOALL: PEs execute their ranges one
    /// after another, in ascending order, on the shared machine state. Also
    /// the fallback when the sharded path declines or detects a conflict.
    fn exec_doall_static_serial(
        &mut self,
        l: &'p Loop,
        lo: i64,
        hi: i64,
        per_iter: u64,
        cb: Option<&CompiledBody<'p>>,
    ) {
        for pe in 0..self.cfg.n_pes {
            if self.abort.is_some() {
                break;
            }
            let range = match l.align {
                Some(aid) => ccdp_dist::aligned_range_for_pe(
                    &self.layout,
                    self.program.array(aid),
                    lo,
                    hi,
                    l.step,
                    pe,
                ),
                None => doall_range_for_pe(lo, hi, l.step, pe, self.cfg.n_pes),
            };
            if let Some(r) = range {
                self.run_doall_range(pe, l, r.lo, r.hi, per_iter, cb);
            }
        }
    }

    /// Shard a static DOALL's PE blocks across `SimOptions::sim_threads`
    /// workers. Returns `false` — leaving the master state untouched, so
    /// the caller reruns the epoch serially — when this run is ineligible
    /// or when the optimistic parallel run detected a cross-block memory
    /// dependence.
    ///
    /// Soundness (full argument in DESIGN §15): each worker simulates one
    /// contiguous PE block, in PE order, on a clone of the pre-epoch state
    /// — exactly the serial schedule restricted to its block. The merge is
    /// byte-identical to the serial run unless some earlier block *wrote* a
    /// cache line a later block *touched* (the later block should have seen
    /// that write; it saw the snapshot instead). That is precisely the
    /// conflict predicate checked below; on a hit, all worker state is
    /// discarded and the serial path re-executes from the untouched master
    /// state, so the fallback is exact, deterministic, and repeatable.
    fn exec_doall_static_sharded(&mut self, l: &'p Loop, lo: i64, hi: i64, per_iter: u64) -> bool {
        if self.opts.sim_threads <= 1 {
            return false;
        }
        // Structured decline reasons, surfaced through `ShardStats`: the
        // tree walker's purpose is to be the plain reference
        // implementation; hardware schemes (MESI/Dragon) contend on a
        // shared bus, so PEs are not independent between barriers; a
        // wall-clock deadline has no deterministic per-block slicing.
        if self.cfg.n_pes < 2 {
            self.shard_stats.declined_few_pes += 1;
            return false;
        }
        if self.treewalk {
            self.shard_stats.declined_treewalk += 1;
            return false;
        }
        if matches!(self.scheme, Scheme::Mesi | Scheme::Dragon) {
            self.shard_stats.declined_hardware += 1;
            return false;
        }
        if self.opts.wall_deadline.is_some() {
            self.shard_stats.declined_wall_deadline += 1;
            return false;
        }
        // Static shard-independence verdict (`analysis::shard`, cached per
        // loop). `Disjoint` ⇒ the workers skip the line-granular access
        // log and the merge below skips the conflict scan (pure
        // fork/join); it also makes cycle/step-budgeted runs eligible, via
        // per-block budget slicing — sound only when blocks are proven
        // independent, because a conflict rerun under a sliced budget
        // could otherwise abort at a non-serial point.
        let disjoint = self.opts.shard_static && self.loop_disjoint(l);
        if self.budgeted && !disjoint {
            self.shard_stats.declined_budget_unproven += 1;
            return false;
        }
        let base_steps = self.steps;
        let mut wopts = self.opts;
        // Budget slicing: workers keep the per-PE cycle budget unchanged
        // (each PE's cycle counter evolves exactly as in the serial
        // schedule) and check their own step count against the budget
        // remaining at the fork.
        if let Some(b) = wopts.step_budget {
            wopts.step_budget = Some(b.saturating_sub(base_steps));
        }
        let n = self.cfg.n_pes;
        let t = self.opts.sim_threads.min(n);
        let mut seeds = Vec::with_capacity(t);
        for b in 0..t {
            let lo_pe = b * n / t;
            let hi_pe = (b + 1) * n / t;
            let pes = (0..n)
                .map(|i| {
                    if (lo_pe..hi_pe).contains(&i) {
                        self.pes[i].clone()
                    } else {
                        Pe::placeholder(i)
                    }
                })
                .collect();
            seeds.push(BlockSeed {
                program: self.program,
                l,
                lo,
                hi,
                per_iter,
                layout: self.layout.clone(),
                cfg: self.cfg.clone(),
                scheme: self.scheme.clone(),
                opts: wopts,
                mem: self.mem.clone(),
                pes,
                env: self.env.clone(),
                phase: self.phase,
                faults: self.faults.clone(),
                loop_headers: self.loop_headers.clone(),
                ref_index: self.ref_index.clone(),
                flops: self.flops.clone(),
                craft_cost: self.craft_cost.clone(),
                cur_epoch_id: self.cur_epoch_id,
                trace_on: self.trace.enabled(),
                lo_pe,
                hi_pe,
                log_lines: !disjoint,
            });
        }
        let mut outs: Vec<BlockOut> = Vec::with_capacity(t);
        std::thread::scope(|s| {
            let mut seeds = seeds.into_iter();
            let first = seeds.next().expect("at least one block");
            let handles: Vec<_> = seeds.map(|seed| s.spawn(move || run_block(seed))).collect();
            // The master thread simulates block 0 itself instead of idling.
            outs.push(run_block(first));
            for h in handles {
                outs.push(h.join().expect("shard worker panicked"));
            }
        });
        // Budget aborts: any worker abort (cycle budget tripped on one of
        // its PEs), or the combined step count exceeding the global step
        // budget (the serial run would have aborted mid-epoch), discards
        // all block state; the serial rerun from the untouched master
        // state then reproduces the exact serial abort. A worker's own
        // step abort always implies the sum check fires too (it stops at
        // remaining+1 steps), so the two conditions together are exact.
        if self.budgeted {
            let total: u64 = outs.iter().map(|o| o.steps).sum();
            let over_steps = self
                .opts
                .step_budget
                .is_some_and(|b| base_steps.saturating_add(total) > b);
            if over_steps || outs.iter().any(|o| o.abort.is_some()) {
                self.shard_stats.budget_reruns += 1;
                return false;
            }
        }
        if disjoint {
            // Statically proven: no log was kept, no scan needed.
            self.shard_stats.static_proven += 1;
        } else {
            self.shard_stats.dynamic_logged += 1;
            // Conflict predicate: an earlier block wrote a line a later
            // block touched. (The other direction is fine — serially the
            // later block runs after the earlier one, and it saw the same
            // pre-write data.)
            let mut written: HashSet<u64> = HashSet::new();
            for out in &outs {
                let ll = out.lines.as_ref().expect("dynamic path keeps the line log");
                if ll.touched_lines.iter().any(|la| written.contains(la)) {
                    self.shard_stats.conflicts += 1;
                    if !self.shard_stats.conflict_loops.contains(&l.id) {
                        self.shard_stats.conflict_loops.push(l.id);
                    }
                    return false;
                }
                written.extend(ll.written_lines.iter().copied());
            }
        }
        // Merge, in block order. Per-word final states are disjoint across
        // blocks (proven statically, or by the conflict scan just run), so
        // everything below is order-independent per address and
        // deterministic.
        for out in outs.iter_mut() {
            for pe in out.lo_pe..out.hi_pe {
                std::mem::swap(&mut self.pes[pe], &mut out.pes[pe]);
                self.mem.swap_private_space(&mut out.mem, pe);
                if let (Some(mf), Some(wf)) = (self.faults.as_mut(), out.faults.as_ref()) {
                    mf.absorb_pe(wf, pe);
                }
                if let Some(slot) = self.cur_epoch {
                    self.epochs[slot].per_pe[pe].add(&out.epoch.per_pe[pe]);
                }
            }
            for &addr in &out.written_addrs {
                let (v, ver) = out.mem.read_shared(addr);
                self.mem.set_shared(addr, v, ver);
            }
            self.oracle.stale_reads += out.oracle.stale_reads;
            self.oracle.examples.append(&mut out.oracle.examples);
            for ev in out.trace.iter() {
                self.trace.record(*ev);
            }
            self.steps += out.steps;
        }
        // Each worker capped its own example list, so the concatenation's
        // prefix is exactly what the serial run would have recorded.
        self.oracle.examples.truncate(self.opts.oracle_examples);
        // Deferred owner-cache patches: a write whose owning PE lives in
        // another block updates that owner's (now merged-back) cache with
        // the word's final state. `update_word` is a residency-checked
        // no-op, and any interleaving that could make final-state patching
        // diverge from the serial patch sequence implies the owner's block
        // touched the written line — rejected by the dynamic scan above,
        // or impossible by the static disjointness proof.
        for out in &outs {
            for &addr in &out.written_addrs {
                let owner = self.mem.owner(addr);
                if !(out.lo_pe..out.hi_pe).contains(&owner) {
                    let (v, ver) = out.mem.read_shared(addr);
                    self.pes[owner].cache.update_word(addr, v, ver);
                }
            }
        }
        true
    }

    /// Cached static shard-independence verdict for a DOALL: `true` when
    /// `analysis::shard` proves its PE blocks pairwise line-disjoint. The
    /// verdict is computed at one-PE-per-block granularity, which implies
    /// disjointness for every contiguous coarser partition — so one cached
    /// answer per loop id is valid at any worker count, and across `Repeat`
    /// re-executions of the same source loop.
    fn loop_disjoint(&mut self, l: &'p Loop) -> bool {
        if let Some(&d) = self.shard_verdicts.get(&l.id) {
            return d;
        }
        let epoch = self
            .cur_epoch_id
            .and_then(|id| self.program.epochs().into_iter().find(|e| e.id.0 == id));
        let d = epoch.is_some_and(|e| {
            ccdp_analysis::shard_verdict(self.program, &self.layout, e, l.id, self.cfg.line_words)
                .is_disjoint()
        });
        self.shard_verdicts.insert(l.id, d);
        d
    }

    /// One PE's contiguous slice of a DOALL's iterations (a static range or
    /// a dynamic chunk). `cb` selects the compiled trace; `None` runs the
    /// reference tree walker.
    fn run_doall_range(
        &mut self,
        pe: usize,
        l: &'p Loop,
        lo: i64,
        hi: i64,
        per_iter: u64,
        cb: Option<&CompiledBody<'p>>,
    ) {
        if lo > hi {
            return;
        }
        let Some(body) = cb else {
            let mut v = lo;
            while v <= hi {
                if !self.tick(pe) {
                    break;
                }
                self.env.set(l.var, v);
                self.charge(pe, CycleCategory::LoopOverhead, self.cfg.loop_overhead);
                self.charge(pe, CycleCategory::SchedOverhead, per_iter);
                self.exec_stmts_on_pe(pe, &l.body);
                v += l.step;
            }
            return;
        };
        let trip = (hi - lo) / l.step + 1;
        let last = lo + (trip - 1) * l.step;
        let mut frame = self.frames.pop().unwrap_or_default();
        frame.clear();
        for spec in &body.slots {
            frame.push(spec.enter(&self.env, lo, last, l.step));
        }
        if let Some(b) = body.batch {
            // Straight-line private-only body: nothing in the range observes
            // the PE clock, so the whole range's charges collapse into one
            // charge per category up front (see `exec_compiled_loop`).
            // Saturating products: a runaway trip count must trip the budget
            // check below, not wrap the arithmetic.
            let t = trip as u64;
            self.charge_saturating(pe, CycleCategory::LoopOverhead, t, self.cfg.loop_overhead);
            self.charge_saturating(pe, CycleCategory::SchedOverhead, t, per_iter);
            self.charge_saturating(pe, CycleCategory::CacheHit, t.saturating_mul(b.reads), self.cfg.cache_hit);
            self.charge_saturating(pe, CycleCategory::WriteLocal, t.saturating_mul(b.writes), self.cfg.write_local);
            self.charge_saturating(pe, CycleCategory::FpWork, t, b.fp);
            if !self.exec_batch_sweep(pe, l, lo, trip, body, &mut frame) {
                let mut v = lo;
                while v <= hi {
                    if !self.tick(pe) {
                        break;
                    }
                    self.env.set(l.var, v);
                    self.exec_cstmts_values_only(pe, body, &frame);
                    for st in frame.iter_mut() {
                        st.off += st.doff;
                    }
                    v += l.step;
                }
            }
        } else {
            let mut v = lo;
            while v <= hi {
                if !self.tick(pe) {
                    break;
                }
                self.env.set(l.var, v);
                self.charge(pe, CycleCategory::LoopOverhead, self.cfg.loop_overhead);
                self.charge(pe, CycleCategory::SchedOverhead, per_iter);
                self.exec_cstmts(pe, &body.stmts, &body.slots, &frame);
                for st in frame.iter_mut() {
                    st.off += st.doff;
                }
                v += l.step;
            }
        }
        self.frames.push(frame);
    }

    fn barrier(&mut self) {
        let m = self.global_now();
        let cost = match self.scheme {
            Scheme::Sequential => 0,
            _ => self.cfg.barrier,
        };
        for pe in 0..self.pes.len() {
            let wait = m - self.pes[pe].now;
            self.pes[pe].stats.barrier_wait_cycles += wait;
            self.charge(pe, CycleCategory::BarrierWait, wait);
            self.charge(pe, CycleCategory::BarrierCost, cost);
        }
        self.trace_event(0, TraceEventKind::Barrier, 0);
        self.phase += 1;
    }

    // -- statements on one PE -------------------------------------------

    fn exec_stmts_on_pe(&mut self, pe: usize, stmts: &'p [Stmt]) {
        for s in stmts {
            if self.abort.is_some() {
                return;
            }
            match s {
                Stmt::Assign(a) => self.exec_assign(pe, a),
                Stmt::Loop(l) => self.exec_loop_on_pe(pe, l),
                Stmt::If(i) => {
                    self.charge(pe, CycleCategory::LoopOverhead, 1);
                    if self.eval_cond(&i.cond) {
                        self.exec_stmts_on_pe(pe, &i.then_branch);
                    } else {
                        self.exec_stmts_on_pe(pe, &i.else_branch);
                    }
                }
                Stmt::Prefetch(pf) => {
                    if self.prefetching() {
                        self.exec_prefetch(pe, pf);
                    }
                }
            }
        }
    }

    fn exec_loop_on_pe(&mut self, pe: usize, l: &'p Loop) {
        debug_assert_eq!(l.kind, LoopKind::Serial, "DOALL nested in PE code");
        if self.treewalk {
            self.exec_loop_treewalk(pe, l);
        } else {
            let body = self.compiled_body(l);
            self.exec_compiled_loop(pe, l, &body);
        }
    }

    /// Reference interpreter for a serial loop: re-evaluates every subscript
    /// and re-resolves every dispatch per access. Kept as the equivalence
    /// oracle for the compiled trace (`SimOptions::force_treewalk`).
    fn exec_loop_treewalk(&mut self, pe: usize, l: &'p Loop) {
        let lo = l.lo.eval(&self.env);
        let hi = l.hi.eval(&self.env);
        if lo > hi {
            return;
        }
        let pipelined = self.prefetching() && !l.pipeline.is_empty();
        if pipelined {
            self.pipeline_prologue(pe, l, lo, hi);
        }
        let mut v = lo;
        while v <= hi {
            if !self.tick(pe) {
                break;
            }
            self.env.set(l.var, v);
            self.charge(pe, CycleCategory::LoopOverhead, self.cfg.loop_overhead);
            if pipelined {
                self.pipeline_steady(pe, l, lo, hi, v);
            }
            self.exec_stmts_on_pe(pe, &l.body);
            v += l.step;
        }
        self.env.unset(l.var);
    }

    /// Software-pipelining prologue: prefetch the first `distance`
    /// iterations' targets before the loop starts.
    fn pipeline_prologue(&mut self, pe: usize, l: &'p Loop, lo: i64, hi: i64) {
        let trip = (hi - lo) / l.step + 1;
        for pf in &l.pipeline {
            let d = pf.distance as i64;
            let every = pf.every.max(1) as i64;
            for k in (0..d.min(trip)).step_by(every as usize) {
                self.env.set(l.var, lo + (k - d) * l.step);
                self.issue_line_prefetch(pe, pf.array, &pf.index);
            }
        }
    }

    /// Software-pipelining steady state: at iteration `v`, prefetch the
    /// targets of iteration `v + distance` (when on cadence and in range).
    fn pipeline_steady(&mut self, pe: usize, l: &'p Loop, lo: i64, hi: i64, v: i64) {
        for pf in &l.pipeline {
            let k = (v - lo) / l.step;
            if k % pf.every.max(1) as i64 == 0 && v + pf.distance as i64 * l.step <= hi {
                self.issue_line_prefetch(pe, pf.array, &pf.index);
            }
        }
    }

    // -- compiled-trace execution ---------------------------------------

    /// The compiled body for a loop, compiling on first encounter.
    fn compiled_body(&mut self, l: &'p Loop) -> Rc<CompiledBody<'p>> {
        if let Some(b) = self.compiled.get(&l.id) {
            return Rc::clone(b);
        }
        let body = {
            let ctx = CompileCtx {
                program: self.program,
                mem: &self.mem,
                scheme: &self.scheme,
                craft_cost: &self.craft_cost,
            };
            Rc::new(compile_loop(l, &ctx))
        };
        self.compiled.insert(l.id, Rc::clone(&body));
        body
    }

    /// Execute a serial loop through its compiled body. Cycle-for-cycle
    /// identical to [`Simulator::exec_loop_treewalk`]: the same memory-op
    /// helpers charge at the same points; only the per-access subscript
    /// evaluation, bounds assertion, and dispatch matching are hoisted.
    fn exec_compiled_loop(&mut self, pe: usize, l: &'p Loop, body: &CompiledBody<'p>) {
        let lo = l.lo.eval(&self.env);
        let hi = l.hi.eval(&self.env);
        if lo > hi {
            return;
        }
        let pipelined = self.prefetching() && !l.pipeline.is_empty();
        if pipelined {
            self.pipeline_prologue(pe, l, lo, hi);
        }
        let trip = (hi - lo) / l.step + 1;
        let last = lo + (trip - 1) * l.step;
        let mut frame = self.frames.pop().unwrap_or_default();
        frame.clear();
        for spec in &body.slots {
            frame.push(spec.enter(&self.env, lo, last, l.step));
        }
        match body.batch {
            // Straight-line private-only body: no trace events, no cache or
            // clock observation anywhere in the loop, so the per-iteration
            // charges collapse into one charge per category at entry. The
            // values-only sweep still runs every iteration.
            Some(b) if !pipelined => {
                let t = trip as u64;
                self.charge_saturating(pe, CycleCategory::LoopOverhead, t, self.cfg.loop_overhead);
                self.charge_saturating(pe, CycleCategory::CacheHit, t.saturating_mul(b.reads), self.cfg.cache_hit);
                self.charge_saturating(pe, CycleCategory::WriteLocal, t.saturating_mul(b.writes), self.cfg.write_local);
                self.charge_saturating(pe, CycleCategory::FpWork, t, b.fp);
                if !self.exec_batch_sweep(pe, l, lo, trip, body, &mut frame) {
                    let mut v = lo;
                    while v <= hi {
                        if !self.tick(pe) {
                            break;
                        }
                        self.env.set(l.var, v);
                        self.exec_cstmts_values_only(pe, body, &frame);
                        for st in frame.iter_mut() {
                            st.off += st.doff;
                        }
                        v += l.step;
                    }
                }
            }
            _ => {
                let mut v = lo;
                while v <= hi {
                    if !self.tick(pe) {
                        break;
                    }
                    self.env.set(l.var, v);
                    self.charge(pe, CycleCategory::LoopOverhead, self.cfg.loop_overhead);
                    if pipelined {
                        self.pipeline_steady(pe, l, lo, hi, v);
                    }
                    self.exec_cstmts(pe, &body.stmts, &body.slots, &frame);
                    for st in frame.iter_mut() {
                        st.off += st.doff;
                    }
                    v += l.step;
                }
            }
        }
        self.env.unset(l.var);
        self.frames.push(frame);
    }

    fn exec_cstmts(
        &mut self,
        pe: usize,
        stmts: &[CStmt<'p>],
        slots: &[SlotSpec<'p>],
        frame: &[SlotState],
    ) {
        for s in stmts {
            if self.abort.is_some() {
                return;
            }
            match s {
                CStmt::Assign(a) => self.exec_cassign(pe, a, slots, frame),
                CStmt::If { cond, then_branch, else_branch } => {
                    self.charge(pe, CycleCategory::LoopOverhead, 1);
                    if self.eval_cond(cond) {
                        self.exec_cstmts(pe, then_branch, slots, frame);
                    } else {
                        self.exec_cstmts(pe, else_branch, slots, frame);
                    }
                }
                CStmt::Loop(cl) => {
                    debug_assert_eq!(cl.l.kind, LoopKind::Serial, "DOALL nested in PE code");
                    self.exec_compiled_loop(pe, cl.l, &cl.body);
                }
                CStmt::Prefetch(pf) => self.exec_prefetch(pe, pf),
            }
        }
    }

    /// Word address of a compiled reference: the strength-reduced recurrence
    /// when the whole range was proven in bounds at entry, else the original
    /// per-access evaluation (identical panic behaviour for genuinely
    /// out-of-bounds subscripts).
    #[inline]
    fn caddr(&mut self, base: usize, slot: u32, slots: &[SlotSpec<'p>], frame: &[SlotState]) -> usize {
        let st = frame[slot as usize];
        if st.fast {
            base + st.off as usize
        } else {
            let spec = &slots[slot as usize];
            base + self.addr_of(spec.array, spec.index)
        }
    }

    /// One compiled read: resolve the address, dispatch on the pre-resolved
    /// [`AccessKind`].
    #[inline]
    fn cread(&mut self, pe: usize, r: &CRead, slots: &[SlotSpec<'p>], frame: &[SlotState]) -> f64 {
        let addr = self.caddr(r.base, r.slot, slots, frame);
        match r.kind {
            AccessKind::Private => {
                self.charge(pe, CycleCategory::CacheHit, self.cfg.cache_hit);
                self.mem.read_private(pe, addr)
            }
            AccessKind::Base { craft } => self.base_read(pe, r.rid, addr, craft),
            AccessKind::Cached(h) => self.cached_read(pe, r.rid, addr, h),
            AccessKind::Bypass => self.bypass_read(pe, addr),
            AccessKind::Hardware => self.backend_read(pe, r.rid, addr, 0),
        }
    }

    fn exec_cassign(
        &mut self,
        pe: usize,
        a: &CAssign,
        slots: &[SlotSpec<'p>],
        frame: &[SlotState],
    ) {
        let n = a.reads.len();
        let v = if n <= READ_BUF {
            // Loaded values live in a fixed stack buffer — no PE scratch
            // vector traffic on the hot path.
            let mut buf = [0.0f64; READ_BUF];
            for (dst, r) in buf.iter_mut().zip(&a.reads) {
                *dst = self.cread(pe, r, slots, frame);
            }
            a.expr.eval(&buf[..n], &self.env)
        } else {
            let mut vals = std::mem::take(&mut self.pes[pe].scratch);
            vals.clear();
            for r in &a.reads {
                let v = self.cread(pe, r, slots, frame);
                vals.push(v);
            }
            let v = a.expr.eval(&vals, &self.env);
            self.pes[pe].scratch = vals;
            v
        };
        let addr = self.caddr(a.write.base, a.write.slot, slots, frame);
        if a.write.shared {
            self.backend_write(pe, addr, a.write.craft, v);
        } else {
            self.charge(pe, CycleCategory::WriteLocal, self.cfg.write_local);
            self.mem.write_private(pe, addr, v);
        }
        self.charge(pe, CycleCategory::FpWork, a.cost);
    }

    /// Numerics-only sweep of a batched body: all charges were hoisted to
    /// the loop entry, so only values move here.
    fn exec_cstmts_values_only(
        &mut self,
        pe: usize,
        body: &CompiledBody<'p>,
        frame: &[SlotState],
    ) {
        for s in &body.stmts {
            let CStmt::Assign(a) = s else {
                unreachable!("batched bodies are straight-line assignments")
            };
            let n = a.reads.len();
            let v = if n <= READ_BUF {
                let mut buf = [0.0f64; READ_BUF];
                for (dst, r) in buf.iter_mut().zip(&a.reads) {
                    let addr = self.caddr(r.base, r.slot, &body.slots, frame);
                    *dst = self.mem.read_private(pe, addr);
                }
                a.expr.eval(&buf[..n], &self.env)
            } else {
                let mut vals = std::mem::take(&mut self.pes[pe].scratch);
                vals.clear();
                for r in &a.reads {
                    let addr = self.caddr(r.base, r.slot, &body.slots, frame);
                    vals.push(self.mem.read_private(pe, addr));
                }
                let v = a.expr.eval(&vals, &self.env);
                self.pes[pe].scratch = vals;
                v
            };
            let addr = self.caddr(a.write.base, a.write.slot, &body.slots, frame);
            self.mem.write_private(pe, addr, v);
        }
    }

    /// One iteration of a batched body with every slot recurrence on the
    /// fast path: addresses are `base + off` directly — no slow-path
    /// branch, no environment reads outside the expression itself.
    #[inline]
    fn exec_values_fast(&mut self, pe: usize, body: &CompiledBody<'p>, frame: &[SlotState]) {
        for s in &body.stmts {
            let CStmt::Assign(a) = s else {
                unreachable!("batched bodies are straight-line assignments")
            };
            let mut buf = [0.0f64; READ_BUF];
            for (dst, r) in buf.iter_mut().zip(&a.reads) {
                let addr = r.base + frame[r.slot as usize].off as usize;
                *dst = self.mem.read_private(pe, addr);
            }
            let v = a.expr.eval(&buf[..a.reads.len()], &self.env);
            let addr = a.write.base + frame[a.write.slot as usize].off as usize;
            self.mem.write_private(pe, addr, v);
        }
    }

    /// Direct-threaded sweep of a batched body over its whole iteration
    /// range. Eligible when no budget needs a per-step check, every slot
    /// recurrence took the fast path, and every statement's reads fit the
    /// stack buffer; returns `false` (and executes nothing) otherwise, and
    /// the caller runs the per-iteration loop.
    ///
    /// The sweep hoists the per-iteration `tick` into one `steps += trip`
    /// (exact: with no budget, `tick` is just that counter), maintains the
    /// loop variable only when an expression actually reads its value, and
    /// otherwise runs iterations in fixed-width chunks whose inner loop
    /// carries only the offset recurrences — the compiler can unroll it.
    fn exec_batch_sweep(
        &mut self,
        pe: usize,
        l: &'p Loop,
        lo: i64,
        trip: i64,
        body: &CompiledBody<'p>,
        frame: &mut [SlotState],
    ) -> bool {
        const CHUNK: i64 = 8;
        if self.budgeted
            || frame.iter().any(|st| !st.fast)
            || body
                .stmts
                .iter()
                .any(|s| matches!(s, CStmt::Assign(a) if a.reads.len() > READ_BUF))
        {
            return false;
        }
        self.steps += trip as u64;
        if body.uses_loop_var {
            let mut v = lo;
            for _ in 0..trip {
                self.env.set(l.var, v);
                self.exec_values_fast(pe, body, frame);
                for st in frame.iter_mut() {
                    st.off += st.doff;
                }
                v += l.step;
            }
            return true;
        }
        let mut left = trip;
        while left >= CHUNK {
            for _ in 0..CHUNK {
                self.exec_values_fast(pe, body, frame);
                for st in frame.iter_mut() {
                    st.off += st.doff;
                }
            }
            left -= CHUNK;
        }
        for _ in 0..left {
            self.exec_values_fast(pe, body, frame);
            for st in frame.iter_mut() {
                st.off += st.doff;
            }
        }
        true
    }

    fn exec_assign(&mut self, pe: usize, a: &'p Assign) {
        let mut vals = std::mem::take(&mut self.pes[pe].scratch);
        vals.clear();
        for r in &a.reads {
            let v = self.exec_read(pe, r);
            vals.push(v);
        }
        let v = a.expr.eval(&vals, &self.env);
        self.pes[pe].scratch = vals;
        self.exec_write(pe, &a.write, v);
        let fl = *self.flops.get(&a.write.id).unwrap_or(&0);
        self.charge(pe, CycleCategory::FpWork, fl as u64 + a.extra_cost as u64);
    }

    // -- memory operations ------------------------------------------------

    /// Evaluate a reference's subscripts and return the word address within
    /// its array's space, with a hard bounds check.
    fn addr_of(&mut self, r_array: ArrayId, index: &[Affine]) -> usize {
        let decl = self.program.array(r_array);
        self.coords.clear();
        for ix in index {
            self.coords.push(ix.eval(&self.env));
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, &c) in self.coords.iter().enumerate() {
            assert!(
                c >= 0 && (c as usize) < decl.extents[d],
                "{}: index {} out of bounds 0..{} (dim {})",
                decl.name,
                c,
                decl.extents[d],
                d
            );
            off += c as usize * stride;
            stride *= decl.extents[d];
        }
        off
    }

    fn exec_read(&mut self, pe: usize, r: &'p ArrayRef) -> f64 {
        let off = self.addr_of(r.array, &r.index);
        if !self.mem.is_shared(r.array) {
            self.charge(pe, CycleCategory::CacheHit, self.cfg.cache_hit);
            return self.mem.read_private(pe, self.mem.base(r.array) + off);
        }
        let addr = self.mem.base(r.array) + off;
        let craft = self.craft_cost[r.array.index()];
        self.backend_read(pe, r.id, addr, craft)
    }

    /// BASE-scheme shared read. `craft` is the array's CRAFT local-access
    /// overhead. Shared by the tree walker and the compiled trace.
    pub(crate) fn base_read(&mut self, pe: usize, rid: RefId, addr: usize, craft: u64) -> f64 {
        self.shard_touch(addr);
        let local = self.mem.owner(addr) == pe;
        if local {
            // The T3D caches all local memory; CRAFT pays only the
            // distribution index arithmetic on top.
            self.charge(pe, CycleCategory::CraftOverhead, craft);
            self.cached_read(pe, rid, addr, Handling::Normal)
        } else {
            // Remote shared data is never cached under CRAFT.
            let lat = self.cfg.remote_uncached;
            self.charge(pe, CycleCategory::CraftOverhead, self.cfg.craft_remote);
            self.charge(pe, CycleCategory::UncachedRead, lat);
            let p = &mut self.pes[pe];
            p.stats.mem_stall_cycles += lat;
            p.stats.uncached_reads += 1;
            self.trace_event(pe, TraceEventKind::UncachedRead, addr);
            self.mem.read_shared(addr).0
        }
    }

    /// CCDP `Bypass` read: always reads main memory, never the cache.
    /// Shared by the tree walker and the compiled trace.
    pub(crate) fn bypass_read(&mut self, pe: usize, addr: usize) -> f64 {
        self.shard_touch(addr);
        let local = self.mem.owner(addr) == pe;
        let lat = if local { self.cfg.local_uncached } else { self.cfg.remote_uncached };
        self.charge(pe, CycleCategory::BypassRead, lat);
        let p = &mut self.pes[pe];
        p.stats.mem_stall_cycles += lat;
        p.stats.bypass_reads += 1;
        self.trace_event(pe, TraceEventKind::BypassRead, addr);
        self.mem.read_shared(addr).0
    }

    pub(crate) fn cached_read(&mut self, pe: usize, rid: RefId, addr: usize, h: Handling) -> f64 {
        // Touched even on a cache hit: the hit path's oracle check reads
        // the word's *current* memory version, so a hit on a line another
        // block is writing is a real cross-block interaction.
        self.shard_touch(addr);
        let phase = self.phase;
        if h == Handling::Fresh {
            self.pes[pe].stats.fresh_reads += 1;
        }
        if let Some(hit) = self.pes[pe].cache.lookup(addr) {
            let fresh_ok = h != Handling::Fresh || hit.filled_phase == phase;
            if fresh_ok {
                // Prefetch quality accounting: was this served by data a
                // prefetch moved, and is this the first touch of the word?
                if self.pes[pe].cache.is_prefetched(hit.line) {
                    let p = &mut self.pes[pe];
                    p.stats.prefetched_line_hits += 1;
                    if p.cache.mark_used(hit.line, addr) {
                        p.stats.prefetch_words_used += 1;
                    }
                    if h == Handling::Fresh {
                        p.stats.fresh_hits_prefetched += 1;
                    }
                }
                let now = self.pes[pe].now;
                if hit.ready_at > now {
                    let wait = hit.ready_at - now;
                    let p = &mut self.pes[pe];
                    p.stats.prefetch_late += 1;
                    p.stats.mem_stall_cycles += wait + self.cfg.queue_pop;
                    self.charge(pe, CycleCategory::PrefetchWait, wait);
                    self.charge(pe, CycleCategory::QueuePop, self.cfg.queue_pop);
                    self.trace_event(pe, TraceEventKind::PrefetchWait, addr);
                } else {
                    self.charge(pe, CycleCategory::CacheHit, self.cfg.cache_hit);
                    self.trace_event(pe, TraceEventKind::CacheHit, addr);
                }
                let p = &mut self.pes[pe];
                p.stats.cache_hits += 1;
                let (v, ver) = p.cache.read(hit.line, addr);
                self.oracle_check(pe, rid, addr, ver);
                return v;
            }
            // Fresh read over an old-phase line: coherent re-fetch.
            self.pes[pe].stats.refresh_fills += 1;
        }
        // Miss (or refresh): fill from memory — or from the local staging
        // buffer when a vector prefetch already moved the line over.
        let line_base = self.pes[pe].cache.line_base(addr);
        let line_id = self.pes[pe].cache.line_addr(addr);
        let local = self.mem.owner(addr) == pe;
        let staged = !local && self.pes[pe].is_staged(phase, line_id);
        let base_lat = if local || staged { self.cfg.local_fill } else { self.cfg.remote_fill };
        // Fault injection: latency spikes stall demand fills on the remote
        // path, and a demand fill of a line whose prefetch was faulted is
        // the graceful-degradation fallback the invariant relies on.
        let mut lat = base_lat;
        let mut fallback = false;
        if let Some(f) = self.faults.as_mut() {
            if !local && !staged {
                lat = base_lat * f.fill_multiplier(pe);
            }
            fallback = f.take_fallback(pe, line_id);
        }
        if lat > base_lat {
            let fs = &mut self.pes[pe].stats.faults;
            fs.fills_delayed += 1;
            fs.delay_extra_cycles += lat - base_lat;
        }
        if fallback {
            self.pes[pe].stats.faults.demand_fallbacks += 1;
            self.trace_event(pe, TraceEventKind::FaultFallback, addr);
        }
        let (cat, ev) = if local {
            (CycleCategory::LocalFill, TraceEventKind::LocalFill)
        } else if staged {
            (CycleCategory::StagedFill, TraceEventKind::StagedFill)
        } else {
            (CycleCategory::RemoteFill, TraceEventKind::RemoteFill)
        };
        self.charge(pe, cat, lat);
        self.trace_event(pe, ev, addr);
        let lw = self.cfg.line_words;
        let shared_words = self.mem.shared_words();
        {
            let mem = &self.mem;
            let words = (0..lw).map(|k| {
                let a = line_base + k;
                if a < shared_words {
                    mem.read_shared(a)
                } else {
                    (0.0, 0)
                }
            });
            let p = &mut self.pes[pe];
            p.stats.mem_stall_cycles += lat;
            if local {
                p.stats.local_fills += 1;
            } else if staged {
                p.stats.staged_fills += 1;
            } else {
                p.stats.remote_fills += 1;
            }
            let now = p.now;
            p.cache.install(addr, phase, now, words);
        }
        self.mem.read_shared(addr).0
    }

    fn exec_write(&mut self, pe: usize, w: &'p ArrayRef, v: f64) {
        let off = self.addr_of(w.array, &w.index);
        if !self.mem.is_shared(w.array) {
            self.charge(pe, CycleCategory::WriteLocal, self.cfg.write_local);
            self.mem.write_private(pe, self.mem.base(w.array) + off, v);
            return;
        }
        let addr = self.mem.base(w.array) + off;
        self.backend_write(pe, addr, self.craft_cost[w.array.index()], v);
    }

    /// Feed one consumed cached read to the coherence oracle: reading a
    /// word older than main memory is a stale-read violation (and the stale
    /// value really is returned by the caller).
    pub(crate) fn oracle_check(&mut self, pe: usize, rid: RefId, addr: usize, cached_version: u32) {
        let mem_ver = self.mem.version(addr);
        if cached_version < mem_ver {
            self.oracle.stale_reads += 1;
            if self.oracle.examples.len() < self.opts.oracle_examples {
                self.oracle.examples.push(StaleReadExample {
                    reference: rid,
                    pe,
                    addr,
                    cached_version,
                    memory_version: mem_ver,
                    phase: self.phase,
                });
            }
        }
    }

    // -- hardware-backend primitives ---------------------------------------
    //
    // The MESI/Dragon backends compose these: a plain cache hit (no
    // prefetch machinery — hardware schemes never prefetch), a demand fill
    // with the fault-injection latency hook, and a write-through store
    // without the software schemes' owner-cache patching (the protocol
    // keeps remote copies coherent itself).

    /// Hardware-scheme cache hit: charge, trace, count, oracle-check.
    pub(crate) fn hw_cached_hit(&mut self, pe: usize, rid: RefId, addr: usize, hit: Hit) -> f64 {
        self.charge(pe, CycleCategory::CacheHit, self.cfg.cache_hit);
        self.trace_event(pe, TraceEventKind::CacheHit, addr);
        let p = &mut self.pes[pe];
        p.stats.cache_hits += 1;
        let (v, ver) = p.cache.read(hit.line, addr);
        self.oracle_check(pe, rid, addr, ver);
        v
    }

    /// Hardware-scheme demand fill: fetch `addr`'s line from its home
    /// memory into `pe`'s cache (write-allocate on both reads and writes).
    /// Injected latency spikes stretch remote fills through the same
    /// `fill_multiplier` hook as the software schemes.
    pub(crate) fn hw_fill(&mut self, pe: usize, addr: usize) {
        let local = self.mem.owner(addr) == pe;
        let base_lat = if local { self.cfg.local_fill } else { self.cfg.remote_fill };
        let mut lat = base_lat;
        if let Some(f) = self.faults.as_mut() {
            if !local {
                lat = base_lat * f.fill_multiplier(pe);
            }
        }
        if lat > base_lat {
            let fs = &mut self.pes[pe].stats.faults;
            fs.fills_delayed += 1;
            fs.delay_extra_cycles += lat - base_lat;
        }
        let (cat, ev) = if local {
            (CycleCategory::LocalFill, TraceEventKind::LocalFill)
        } else {
            (CycleCategory::RemoteFill, TraceEventKind::RemoteFill)
        };
        self.charge(pe, cat, lat);
        self.trace_event(pe, ev, addr);
        let line_base = self.pes[pe].cache.line_base(addr);
        let lw = self.cfg.line_words;
        let shared_words = self.mem.shared_words();
        let phase = self.phase;
        let mem = &self.mem;
        let words = (0..lw).map(|k| {
            let a = line_base + k;
            if a < shared_words {
                mem.read_shared(a)
            } else {
                (0.0, 0)
            }
        });
        let p = &mut self.pes[pe];
        p.stats.mem_stall_cycles += lat;
        if local {
            p.stats.local_fills += 1;
        } else {
            p.stats.remote_fills += 1;
        }
        let now = p.now;
        p.cache.install(addr, phase, now, words);
    }

    /// Hardware-scheme store: write-through to home memory (bumping the
    /// word's version) and patch the writer's own cached copy. Remote
    /// copies are the protocol's problem — the backend invalidates (MESI)
    /// or updates (Dragon) them around this call. Returns the word's new
    /// memory version (Dragon patches sharers with it).
    pub(crate) fn hw_store(&mut self, pe: usize, addr: usize, v: f64) -> u32 {
        let local = self.mem.owner(addr) == pe;
        let ver = self.mem.write_shared(addr, v);
        let lat = if local { self.cfg.write_local } else { self.cfg.write_remote };
        let (cat, ev) = if local {
            (CycleCategory::WriteLocal, TraceEventKind::WriteLocal)
        } else {
            (CycleCategory::WriteRemote, TraceEventKind::WriteRemote)
        };
        self.charge(pe, cat, lat);
        self.trace_event(pe, ev, addr);
        let p = &mut self.pes[pe];
        if local {
            p.stats.writes_local += 1;
        } else {
            p.stats.writes_remote += 1;
        }
        p.cache.update_word(addr, v, ver);
        ver
    }

    /// Shared-array store. `craft_local` is the array's CRAFT local-access
    /// overhead (consulted only under the BASE scheme). Shared by the tree
    /// walker and the compiled trace.
    pub(crate) fn write_shared_addr(&mut self, pe: usize, addr: usize, craft_local: u64, v: f64) {
        self.shard_note_write(addr);
        let owner = self.mem.owner(addr);
        let local = owner == pe;
        let ver = self.mem.write_shared(addr, v);
        let craft = match self.scheme {
            Scheme::Base => {
                if local {
                    craft_local
                } else {
                    self.cfg.craft_remote
                }
            }
            _ => 0,
        };
        let lat = if local { self.cfg.write_local } else { self.cfg.write_remote };
        self.charge(pe, CycleCategory::CraftOverhead, craft);
        let (cat, ev) = if local {
            (CycleCategory::WriteLocal, TraceEventKind::WriteLocal)
        } else {
            (CycleCategory::WriteRemote, TraceEventKind::WriteRemote)
        };
        self.charge(pe, cat, lat);
        self.trace_event(pe, ev, addr);
        {
            let p = &mut self.pes[pe];
            if local {
                p.stats.writes_local += 1;
            } else {
                p.stats.writes_remote += 1;
            }
        }
        // Hardware keeps the *owner's* cache consistent with its own memory
        // (incoming remote stores update/invalidate the owner's line), and
        // the writer's own cached copy is updated write-through. Copies on
        // third-party PEs are NOT updated — that is the coherence problem.
        if !matches!(self.scheme, Scheme::Base) || local {
            self.pes[pe].cache.update_word(addr, v, ver);
        }
        if self.shard.as_ref().is_some_and(|s| !s.contains(owner)) {
            // The owner runs in another shard block; its cache is patched
            // with the word's final state at the merge barrier.
        } else {
            self.pes[owner].cache.update_word(addr, v, ver);
        }
    }

    // -- prefetch operations ----------------------------------------------

    fn issue_line_prefetch(&mut self, pe: usize, array: ArrayId, index: &[Affine]) {
        let off = self.addr_of(array, index);
        if !self.mem.is_shared(array) {
            return; // prefetching private data is a no-op
        }
        let addr = self.mem.base(array) + off;
        let owner = self.mem.owner(addr);
        let annex = self.pes[pe].annex_cost(owner, &self.cfg);
        let issue = self.cfg.prefetch_issue + annex;
        self.charge(pe, CycleCategory::PrefetchIssue, issue);
        self.pes[pe].stats.prefetch_cycles += issue;
        // Fault injection: the issue cycles above are already charged; a
        // dropped prefetch costs its issue but never delivers data.
        let line_id = self.pes[pe].cache.line_addr(addr);
        let epoch = self.cur_epoch_id;
        let mut qw = self.cfg.queue_words;
        let mut mult = 1u64;
        let mut inj_dropped = false;
        let mut storm_began = false;
        if let Some(f) = self.faults.as_mut() {
            if f.should_drop(pe, epoch) {
                f.note_faulted(pe, line_id);
                inj_dropped = true;
            } else {
                let (cap, began) = f.effective_queue(pe, qw);
                qw = cap;
                storm_began = began;
                if owner != pe {
                    mult = f.fill_multiplier(pe);
                }
            }
        }
        if inj_dropped {
            self.pes[pe].stats.faults.prefetches_dropped += 1;
            self.trace_event(pe, TraceEventKind::FaultDrop, addr);
            return;
        }
        if storm_began {
            self.pes[pe].stats.faults.queue_storms += 1;
        }
        let base_lat = if owner == pe { self.cfg.local_fill } else { self.cfg.remote_fill };
        let lat = base_lat * mult;
        if mult > 1 {
            // A latency spike on a prefetch is not a PE stall — it only
            // pushes the arrival time out (possibly into a PrefetchWait).
            let fs = &mut self.pes[pe].stats.faults;
            fs.fills_delayed += 1;
            fs.delay_extra_cycles += lat - base_lat;
        }
        let ready = self.pes[pe].now + lat;
        let lw = self.cfg.line_words;
        if !self.pes[pe].queue_reserve(lw, ready, qw) {
            self.pes[pe].stats.line_prefetches_dropped += 1;
            if qw < self.cfg.queue_words {
                // Lost to injected capacity shrink / overflow storm rather
                // than natural queue pressure.
                self.pes[pe].stats.faults.storm_drops += 1;
                if let Some(f) = self.faults.as_mut() {
                    f.note_faulted(pe, line_id);
                }
            }
            self.trace_event(pe, TraceEventKind::PrefetchDropped, addr);
            return;
        }
        self.shard_touch(addr);
        let line_base = self.pes[pe].cache.line_base(addr);
        let shared_words = self.mem.shared_words();
        {
            let mem = &self.mem;
            let words = (0..lw).map(|k| {
                let a = line_base + k;
                if a < shared_words {
                    mem.read_shared(a)
                } else {
                    (0.0, 0)
                }
            });
            let phase = self.phase;
            let p = &mut self.pes[pe];
            p.cache.install_prefetch(addr, phase, ready, words);
            p.stats.line_prefetches_issued += 1;
            p.stats.prefetch_words_issued += lw as u64;
        }
        self.trace_event(pe, TraceEventKind::LinePrefetch, addr);
        // Early-eviction injection: the line arrived, but a conflict kicks
        // it out before its first use. A successful (surviving) install
        // masks any fault recorded for the line earlier.
        let mut evict = false;
        if let Some(f) = self.faults.as_mut() {
            if f.should_evict(pe) {
                f.note_faulted(pe, line_id);
                evict = true;
            } else {
                f.clear_faulted(pe, line_id);
            }
        }
        if evict {
            self.pes[pe].cache.invalidate(addr);
            self.pes[pe].stats.faults.early_evictions += 1;
            self.trace_event(pe, TraceEventKind::FaultEvict, addr);
        }
    }

    fn exec_prefetch(&mut self, pe: usize, pf: &'p PrefetchStmt) {
        match &pf.kind {
            PrefetchKind::Line { array, index, .. } => {
                self.issue_line_prefetch(pe, *array, index);
            }
            PrefetchKind::Vector { covers, array, over } => {
                self.exec_vector_prefetch(pe, *covers, *array, over);
            }
        }
    }

    fn exec_vector_prefetch(
        &mut self,
        pe: usize,
        covers: RefId,
        array: ArrayId,
        over: &[LoopId],
    ) {
        let Some((_, index)) = self.ref_index.get(&covers) else { return };
        let index = index.clone();
        // Iteration intervals of the pulled loops, for this PE.
        let mut intervals: Vec<(ccdp_ir::VarId, i64, i64, i64)> = Vec::new();
        for lid in over {
            let h = self.loop_headers.get(lid).expect("unknown pulled loop").clone();
            let lo = h.lo.eval(&self.env);
            let hi = h.hi.eval(&self.env);
            if lo > hi {
                return;
            }
            let (lo, hi) = match h.kind {
                LoopKind::Serial => (lo, hi),
                LoopKind::DoAllStatic => {
                    let range = match h.align {
                        Some(aid) => ccdp_dist::aligned_range_for_pe(
                            &self.layout,
                            self.program.array(aid),
                            lo,
                            hi,
                            h.step,
                            pe,
                        ),
                        None => doall_range_for_pe(lo, hi, h.step, pe, self.cfg.n_pes),
                    };
                    match range {
                        Some(r) => (r.lo, r.hi),
                        None => return,
                    }
                }
                LoopKind::DoAllDynamic { .. } => return, // never scheduled
            };
            intervals.push((h.var, lo, hi, h.step));
        }
        // Enumerate the per-dimension value lists of the target section.
        let decl = self.program.array(array);
        let mut dim_values: Vec<Vec<i64>> = Vec::with_capacity(index.len());
        let mut words = 1usize;
        for ix in &index {
            let vals = enumerate_affine(ix, &intervals, &self.env);
            words = words.saturating_mul(vals.len());
            if words > 1 << 20 {
                return; // runaway guard; scheduler caps footprints well below
            }
            dim_values.push(vals);
        }
        if words == 0 {
            return;
        }
        // Collect the distinct cache lines covered.
        let lw = self.cfg.line_words;
        let base = self.mem.base(array);
        let mut line_addrs: Vec<usize> = Vec::with_capacity(words / lw + 1);
        let mut coords = vec![0i64; dim_values.len()];
        collect_lines(&dim_values, decl, base, lw, &mut coords, 0, &mut line_addrs);
        line_addrs.sort_unstable();
        line_addrs.dedup();

        // Costs: the PE blocks for the issue; data arrives when the block
        // transfer completes.
        let issue = self.cfg.vector_issue;
        let transfer =
            self.cfg.vector_startup + words as u64 * self.cfg.vector_per_word_tenths / 10;
        self.charge(pe, CycleCategory::VectorIssue, issue);
        {
            let p = &mut self.pes[pe];
            p.stats.prefetch_cycles += issue;
            p.stats.vector_prefetches_issued += 1;
        }
        // Fault injection: one drop decision per vector statement (the whole
        // block transfer is lost, issue cycles stay charged), and latency
        // spikes stretch the transfer completion.
        let epoch = self.cur_epoch_id;
        let mut mult = 1u64;
        let mut inj_dropped = false;
        if let Some(f) = self.faults.as_mut() {
            if f.should_drop(pe, epoch) {
                for &la in &line_addrs {
                    f.note_faulted(pe, la as u64);
                }
                inj_dropped = true;
            } else {
                mult = f.fill_multiplier(pe);
            }
        }
        if inj_dropped {
            self.pes[pe].stats.faults.prefetches_dropped += 1;
            self.trace_event(
                pe,
                TraceEventKind::FaultDrop,
                line_addrs.first().map_or(0, |&la| la * lw),
            );
            return;
        }
        if mult > 1 {
            let fs = &mut self.pes[pe].stats.faults;
            fs.fills_delayed += 1;
            fs.delay_extra_cycles += transfer * (mult - 1);
        }
        self.pes[pe].stats.vector_words_moved += words as u64;
        let ready = self.pes[pe].now + transfer * mult;
        let phase = self.phase;
        let shared_words = self.mem.shared_words();
        self.pes[pe].stage_lines(phase, line_addrs.iter().map(|&la| la as u64));
        self.trace_event(
            pe,
            TraceEventKind::VectorPrefetch,
            line_addrs.first().map_or(0, |&la| la * lw),
        );
        for &la in &line_addrs {
            let line_base = la * lw;
            self.shard_touch(line_base);
            let mem = &self.mem;
            let words_iter = (0..lw).map(|k| {
                let a = line_base + k;
                if a < shared_words {
                    mem.read_shared(a)
                } else {
                    (0.0, 0)
                }
            });
            let p = &mut self.pes[pe];
            p.cache.install_prefetch(line_base, phase, ready, words_iter);
            p.stats.prefetch_words_issued += lw as u64;
        }
        // As in the line-prefetch path: conflict pressure can evict any of
        // the freshly staged lines before first use; survivors mask any
        // earlier fault on the line.
        let mut evicted: Vec<usize> = Vec::new();
        if let Some(f) = self.faults.as_mut() {
            for &la in &line_addrs {
                if f.should_evict(pe) {
                    f.note_faulted(pe, la as u64);
                    evicted.push(la);
                } else {
                    f.clear_faulted(pe, la as u64);
                }
            }
        }
        for &la in &evicted {
            self.pes[pe].cache.invalidate(la * lw);
            self.pes[pe].stats.faults.early_evictions += 1;
            self.trace_event(pe, TraceEventKind::FaultEvict, la * lw);
        }
    }

    fn eval_cond(&self, c: &Cond) -> bool {
        match cond_core(c) {
            Cond::Cmp { lhs, op, rhs } => {
                let l = lhs.eval(&self.env);
                let r = rhs.eval(&self.env);
                match op {
                    CmpOp::Eq => l == r,
                    CmpOp::Ne => l != r,
                    CmpOp::Lt => l < r,
                    CmpOp::Le => l <= r,
                    CmpOp::Gt => l > r,
                    CmpOp::Ge => l >= r,
                }
            }
            Cond::NonAffine(_) => unreachable!("cond_core unwraps"),
        }
    }
}

/// Values an affine subscript takes over the pulled-loop intervals (other
/// variables read from `env`). Sorted ascending, deduplicated.
fn enumerate_affine(
    ix: &Affine,
    intervals: &[(ccdp_ir::VarId, i64, i64, i64)],
    env: &VarEnv,
) -> Vec<i64> {
    // Constant contribution from variables not in the intervals.
    let mut base = ix.constant_term();
    let mut ranging: Vec<(i64, i64, i64, i64)> = Vec::new(); // (coeff, lo, hi, step)
    for &(v, c) in ix.terms() {
        if let Some(&(_, lo, hi, step)) = intervals.iter().find(|(iv, ..)| *iv == v) {
            ranging.push((c, lo, hi, step));
        } else {
            base += c * env.get(v);
        }
    }
    let mut vals = vec![base];
    for (c, lo, hi, step) in ranging {
        let mut next = Vec::with_capacity(vals.len() * ((hi - lo) / step + 1) as usize);
        for v0 in vals {
            let mut v = lo;
            while v <= hi {
                next.push(v0 + c * v);
                v += step;
            }
        }
        vals = next;
    }
    vals.sort_unstable();
    vals.dedup();
    vals
}

/// Cartesian walk over the per-dim value lists, collecting line addresses.
fn collect_lines(
    dim_values: &[Vec<i64>],
    decl: &ccdp_ir::ArrayDecl,
    base: usize,
    line_words: usize,
    coords: &mut [i64],
    dim: usize,
    out: &mut Vec<usize>,
) {
    if dim == dim_values.len() {
        let mut off = 0usize;
        let mut stride = 1usize;
        for (d, &c) in coords.iter().enumerate() {
            if c < 0 || c as usize >= decl.extents[d] {
                return; // sections may over-approximate at edges; skip
            }
            off += c as usize * stride;
            stride *= decl.extents[d];
        }
        out.push((base + off) / line_words);
        return;
    }
    for &v in &dim_values[dim] {
        coords[dim] = v;
        collect_lines(dim_values, decl, base, line_words, coords, dim + 1, out);
    }
}

fn index_stmts(
    stmts: &[Stmt],
    loops: &mut HashMap<LoopId, LoopHeader>,
    refs: &mut HashMap<RefId, (ArrayId, Vec<Affine>)>,
    flops: &mut HashMap<RefId, u32>,
) {
    for s in stmts {
        match s {
            Stmt::Assign(a) => {
                for r in &a.reads {
                    refs.insert(r.id, (r.array, r.index.clone()));
                }
                flops.insert(a.write.id, a.expr.flops());
            }
            Stmt::Loop(l) => {
                loops.insert(
                    l.id,
                    LoopHeader {
                        var: l.var,
                        lo: l.lo.clone(),
                        hi: l.hi.clone(),
                        step: l.step,
                        kind: l.kind,
                        align: l.align,
                    },
                );
                index_stmts(&l.body, loops, refs, flops);
            }
            Stmt::If(i) => {
                index_stmts(&i.then_branch, loops, refs, flops);
                index_stmts(&i.else_branch, loops, refs, flops);
            }
            Stmt::Prefetch(_) => {}
        }
    }
}

#[cfg(test)]
mod tests;
