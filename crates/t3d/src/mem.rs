//! Distributed, versioned memory.

use ccdp_dist::Layout;
use ccdp_ir::{ArrayId, Program, Sharing};

/// The machine's memory: one flat shared word space with per-word versions
/// and owners, plus per-PE private spaces.
///
/// Shared arrays are laid out contiguously (column-major within each array).
/// Versions start at 0 and bump on every write — the substrate of the
/// coherence oracle.
#[derive(Clone)]
pub struct Memory {
    /// Base word address of each array (index by `ArrayId`); shared and
    /// private arrays use separate address spaces but share the base table.
    bases: Vec<usize>,
    shared_values: Vec<f64>,
    shared_versions: Vec<u32>,
    /// Owner PE of each shared word.
    owners: Vec<u8>,
    /// Per-PE private space.
    private_values: Vec<Vec<f64>>,
    /// Is the array shared? (index by `ArrayId`)
    is_shared: Vec<bool>,
}

impl Memory {
    pub fn new(program: &Program, layout: &Layout) -> Memory {
        assert!(layout.n_pes() <= u8::MAX as usize + 1);
        let mut bases = Vec::with_capacity(program.arrays.len());
        let mut is_shared = Vec::with_capacity(program.arrays.len());
        let mut shared_len = 0usize;
        let mut private_len = 0usize;
        for a in &program.arrays {
            match a.sharing {
                Sharing::Shared => {
                    bases.push(shared_len);
                    shared_len += a.len();
                    is_shared.push(true);
                }
                Sharing::Private => {
                    bases.push(private_len);
                    private_len += a.len();
                    is_shared.push(false);
                }
            }
        }
        // Precompute owners, walking each array's coordinate space as an
        // odometer (one reused coords buffer; `delinearize` would allocate a
        // fresh Vec per shared word).
        let mut owners = vec![0u8; shared_len];
        let mut coords: Vec<i64> = Vec::new();
        for a in &program.arrays {
            if a.sharing != Sharing::Shared || a.is_empty() {
                continue;
            }
            let base = bases[a.id.index()];
            coords.clear();
            coords.resize(a.rank(), 0);
            for off in 0..a.len() {
                owners[base + off] = layout.owner(a, &coords) as u8;
                for (c, &e) in coords.iter_mut().zip(&a.extents) {
                    *c += 1;
                    if (*c as usize) < e {
                        break;
                    }
                    *c = 0;
                }
            }
        }
        Memory {
            bases,
            shared_values: vec![0.0; shared_len],
            shared_versions: vec![0; shared_len],
            owners,
            private_values: vec![vec![0.0; private_len]; layout.n_pes()],
            is_shared,
        }
    }

    #[inline]
    pub fn is_shared(&self, a: ArrayId) -> bool {
        self.is_shared[a.index()]
    }

    #[inline]
    pub fn base(&self, a: ArrayId) -> usize {
        self.bases[a.index()]
    }

    #[inline]
    pub fn owner(&self, addr: usize) -> usize {
        self.owners[addr] as usize
    }

    #[inline]
    pub fn read_shared(&self, addr: usize) -> (f64, u32) {
        (self.shared_values[addr], self.shared_versions[addr])
    }

    #[inline]
    pub fn version(&self, addr: usize) -> u32 {
        self.shared_versions[addr]
    }

    #[inline]
    pub fn write_shared(&mut self, addr: usize, v: f64) -> u32 {
        self.shared_values[addr] = v;
        self.shared_versions[addr] += 1;
        self.shared_versions[addr]
    }

    /// Force one shared word to an explicit (value, version) pair. Used by
    /// the epoch-shard merge to copy a worker's final state for the words
    /// that worker wrote; never part of the simulated machine's own
    /// write path (which is [`Memory::write_shared`]).
    #[inline]
    pub(crate) fn set_shared(&mut self, addr: usize, v: f64, ver: u32) {
        self.shared_values[addr] = v;
        self.shared_versions[addr] = ver;
    }

    /// Swap one PE's entire private space with `other`'s (O(1) pointer
    /// swap). The epoch-shard merge uses this to adopt a worker's private
    /// state for the PEs that worker simulated.
    #[inline]
    pub(crate) fn swap_private_space(&mut self, other: &mut Memory, pe: usize) {
        std::mem::swap(&mut self.private_values[pe], &mut other.private_values[pe]);
    }

    #[inline]
    pub fn read_private(&self, pe: usize, addr: usize) -> f64 {
        self.private_values[pe][addr]
    }

    #[inline]
    pub fn write_private(&mut self, pe: usize, addr: usize, v: f64) {
        self.private_values[pe][addr] = v;
    }

    pub fn shared_words(&self) -> usize {
        self.shared_values.len()
    }

    /// Snapshot a shared array's contents (for validation against golden
    /// references).
    pub fn array_values(&self, program: &Program, a: ArrayId) -> Vec<f64> {
        assert!(self.is_shared(a), "array_values reads shared arrays");
        let base = self.base(a);
        let len = program.array(a).len();
        self.shared_values[base..base + len].to_vec()
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    fn mk() -> (Program, Layout) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[4, 4]);
        let _t = pb.private("T", &[8]);
        let b = pb.shared("B", &[4]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, 3, |e, i| {
                e.assign(a.at2(i, 0), b.at1(i).rd());
            });
        });
        let p = pb.finish().unwrap();
        let l = Layout::new(&p, 2);
        (p, l)
    }

    /// The static shard analysis replicates this memory's packing rule to
    /// map sections to shared-space lines; pin the two against each other.
    #[test]
    fn shard_analysis_base_matches_memory_base() {
        let (p, l) = mk();
        let m = Memory::new(&p, &l);
        for a in &p.arrays {
            match ccdp_analysis::shared_base_words(&p, a.id) {
                Some(b) => assert_eq!(b, m.base(a.id), "array {}", a.name),
                None => assert!(!m.is_shared(a.id), "array {}", a.name),
            }
        }
    }

    #[test]
    fn layout_and_versions() {
        let (p, l) = mk();
        let mut m = Memory::new(&p, &l);
        assert_eq!(m.shared_words(), 20);
        let a = p.array_by_name("A").unwrap().id;
        let b = p.array_by_name("B").unwrap().id;
        assert_eq!(m.base(a), 0);
        assert_eq!(m.base(b), 16);
        assert!(m.is_shared(a) && !m.is_shared(p.array_by_name("T").unwrap().id));

        let addr = m.base(b) + 2;
        assert_eq!(m.read_shared(addr), (0.0, 0));
        let v = m.write_shared(addr, 7.5);
        assert_eq!(v, 1);
        assert_eq!(m.read_shared(addr), (7.5, 1));
    }

    #[test]
    fn owners_follow_block_distribution() {
        let (p, l) = mk();
        let m = Memory::new(&p, &l);
        let a = p.array_by_name("A").unwrap();
        // Columns 0..1 on PE0, 2..3 on PE1 (block along last dim).
        assert_eq!(m.owner(m.base(a.id) + a.linearize(&[0, 0])), 0);
        assert_eq!(m.owner(m.base(a.id) + a.linearize(&[3, 1])), 0);
        assert_eq!(m.owner(m.base(a.id) + a.linearize(&[0, 2])), 1);
        assert_eq!(m.owner(m.base(a.id) + a.linearize(&[3, 3])), 1);
    }

    #[test]
    fn private_spaces_are_independent() {
        let (p, l) = mk();
        let mut m = Memory::new(&p, &l);
        m.write_private(0, 3, 1.0);
        m.write_private(1, 3, 2.0);
        assert_eq!(m.read_private(0, 3), 1.0);
        assert_eq!(m.read_private(1, 3), 2.0);
    }
}
