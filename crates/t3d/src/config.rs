//! Machine configuration and execution schemes.

use ccdp_prefetch::PrefetchPlan;

/// Cycle costs and capacities of the simulated machine. Defaults follow the
/// 150 MHz Cray T3D (Alpha 21064) as characterized by Arpaci et al.
/// (ISCA '95) and the Cray system documentation the paper cites; they are
/// inputs to the model, not fitted outputs.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processing elements.
    pub n_pes: usize,
    /// Direct-mapped data cache lines per PE (256 × 32 B = 8 KB).
    pub cache_lines: usize,
    /// Words (8 B) per cache line.
    pub line_words: usize,

    /// Cache hit.
    pub cache_hit: u64,
    /// Cache miss filled from the PE's own memory.
    pub local_fill: u64,
    /// Cache miss filled from a remote PE's memory.
    pub remote_fill: u64,
    /// Uncached load from local memory.
    pub local_uncached: u64,
    /// Uncached (blocking) load from remote memory.
    pub remote_uncached: u64,
    /// Store to local memory.
    pub write_local: u64,
    /// Buffered store to remote memory.
    pub write_remote: u64,

    /// CRAFT software overhead on a *local* shared access (BASE scheme):
    /// distribution index arithmetic. Local shared data is still cached by
    /// the hardware (the T3D caches all local memory; CRAFT's "shared data
    /// is not cached" applies to *remote* data, which never enters the
    /// cache).
    pub craft_local: u64,
    /// CRAFT software overhead on a *remote* shared access (BASE scheme):
    /// global-address translation and DTB Annex manipulation, on top of the
    /// uncached network access.
    pub craft_remote: u64,
    /// CRAFT local-access overhead for arrays with a *generalized*
    /// distribution (general div/mod address arithmetic; TOMCATV and SWIM
    /// in the paper).
    pub craft_generalized: u64,
    /// `doshared` startup overhead, charged per DOALL *instance* (per
    /// barrier phase) in the BASE scheme. TOMCATV's inner DOALLs execute
    /// ~10^5 instances per run, which is where CRAFT loses badly.
    pub base_epoch_overhead: u64,
    /// Per-DOALL-iteration scheduling overhead of CRAFT's `doshared` under
    /// a generalized distribution (runtime iteration→PE map), BASE scheme.
    pub base_doshared_iter: u64,
    /// Setup overhead of the CCDP codes' manual loop assignment, per DOALL
    /// instance.
    pub ccdp_epoch_overhead: u64,

    /// Issuing one line prefetch.
    pub prefetch_issue: u64,
    /// DTB-Annex entry setup when the prefetch targets a different PE than
    /// the previous one (amortized across consecutive same-PE prefetches).
    pub annex_setup: u64,
    /// Extracting a ready word/line that arrived via the prefetch queue.
    pub queue_pop: u64,
    /// Prefetch queue capacity in words; in-flight prefetches beyond this
    /// are dropped (the covered read then re-fetches coherently).
    pub queue_words: usize,

    /// PE-blocking part of issuing a vector prefetch (`shmem_get` setup).
    pub vector_issue: u64,
    /// Pipeline startup latency of a vector transfer (`shmem_get`'s
    /// software setup dominates: a few microseconds on the T3D).
    pub vector_startup: u64,
    /// Per-word transfer cost of a vector prefetch, in tenths of a cycle.
    pub vector_per_word_tenths: u64,

    /// Hardware barrier.
    pub barrier: u64,
    /// Per-iteration loop bookkeeping.
    pub loop_overhead: u64,
    /// Fetching one chunk from the dynamic self-scheduling queue.
    pub dynamic_chunk_overhead: u64,
}

impl MachineConfig {
    /// T3D-like defaults for `n_pes` processors.
    pub fn t3d(n_pes: usize) -> Self {
        MachineConfig {
            n_pes,
            cache_lines: 256,
            line_words: 4,
            cache_hit: 1,
            local_fill: 22,
            remote_fill: 150,
            local_uncached: 22,
            remote_uncached: 150,
            write_local: 2,
            write_remote: 10,
            craft_local: 2,
            craft_remote: 25,
            craft_generalized: 2,
            base_epoch_overhead: 600,
            base_doshared_iter: 140,
            ccdp_epoch_overhead: 80,
            prefetch_issue: 7,
            annex_setup: 12,
            queue_pop: 5,
            queue_words: 16,
            vector_issue: 40,
            vector_startup: 600,
            vector_per_word_tenths: 20,
            barrier: 80,
            loop_overhead: 2,
            dynamic_chunk_overhead: 30,
        }
    }

    /// Total cache capacity in words.
    pub fn cache_words(&self) -> usize {
        self.cache_lines * self.line_words
    }
}

/// Which execution scheme the simulator applies to shared data.
#[derive(Clone, Debug)]
pub enum Scheme {
    /// Uniprocessor reference run: one PE, all data local and cached, no
    /// sharing overheads. The denominator of the paper's speedups.
    Sequential,
    /// The paper's BASE codes: CRAFT shared data. Local portions are cached
    /// by the hardware (plus distribution index arithmetic); remote data is
    /// never cached and pays the full network latency plus software
    /// address-translation overhead. Coherent by construction (remote
    /// stores update the owner's cache; nobody caches foreign data).
    Base,
    /// The paper's CCDP codes: shared data cached; reads follow the plan's
    /// handling (`Normal`/`Fresh`/`Bypass`); prefetch operations execute.
    Ccdp { plan: PrefetchPlan },
}

impl Scheme {
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Sequential => "SEQ",
            Scheme::Base => "BASE",
            Scheme::Ccdp { .. } => "CCDP",
        }
    }
}

/// Simulation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimOptions {
    /// When `Some(k)`, a `Repeat { count }` block with `count > k` runs only
    /// `k` iterations and extrapolates total cycles from the steady-state
    /// per-iteration delta (numerics then correspond to `k` iterations).
    pub repeat_sample: Option<u32>,
    /// Record up to this many stale-read examples in the oracle report.
    pub oracle_examples: usize,
    /// Capacity of the memory-event trace ring buffer; `0` (the default)
    /// disables tracing. Tracing is observation only — it never changes
    /// simulated cycle counts.
    pub trace_capacity: usize,
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn t3d_defaults_are_consistent() {
        let c = MachineConfig::t3d(8);
        assert_eq!(c.cache_words(), 1024);
        assert!(c.remote_fill > c.local_fill);
        assert!(c.remote_uncached > c.local_uncached);
        assert!(c.queue_words >= c.line_words);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Sequential.name(), "SEQ");
        assert_eq!(Scheme::Base.name(), "BASE");
    }
}
