//! Machine configuration and execution schemes.

use ccdp_prefetch::PrefetchPlan;

use crate::faults::FaultPlan;

/// Why a machine configuration or fault plan is invalid. Produced by
/// [`MachineConfig::validate`] / [`FaultPlan::validate`] and surfaced by the
/// pipeline entry points as `PipelineError::InvalidConfig`.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `n_pes == 0`.
    ZeroPes,
    /// `cache_lines == 0`.
    NoCacheLines,
    /// The direct-mapped index needs a power-of-two line count.
    CacheLinesNotPowerOfTwo { cache_lines: usize },
    /// `line_words == 0`.
    ZeroLineWords,
    /// The prefetch queue cannot hold even one line.
    QueueTooSmall { queue_words: usize, line_words: usize },
    /// A remote access must cost at least as much as its local counterpart.
    RemoteNotSlower { kind: &'static str, remote: u64, local: u64 },
    /// A fault-plan rate is not a probability in `[0, 1]`.
    BadFaultRate { field: &'static str, value: f64 },
    /// A fault-plan burst/multiplier parameter is out of range.
    BadFaultParam { field: &'static str, value: u64, need: &'static str },
    /// An environment override variable holds an unparsable value
    /// (`CCDP_FORCE_TREEWALK` / `CCDP_SEED` / `CCDP_SCALE` /
    /// `CCDP_SIM_THREADS` / `CCDP_SHARD_STATIC`; see the core crate's
    /// `EnvOverrides`).
    BadEnv { var: &'static str, value: String, need: &'static str },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroPes => write!(f, "machine has zero PEs"),
            ConfigError::NoCacheLines => write!(f, "cache has zero lines"),
            ConfigError::CacheLinesNotPowerOfTwo { cache_lines } => {
                write!(f, "cache_lines = {cache_lines} is not a power of two (direct-mapped index)")
            }
            ConfigError::ZeroLineWords => write!(f, "cache line holds zero words"),
            ConfigError::QueueTooSmall { queue_words, line_words } => write!(
                f,
                "prefetch queue ({queue_words} words) cannot hold one line ({line_words} words)"
            ),
            ConfigError::RemoteNotSlower { kind, remote, local } => write!(
                f,
                "remote {kind} ({remote} cycles) must cost at least the local one ({local} cycles)"
            ),
            ConfigError::BadFaultRate { field, value } => {
                write!(f, "fault plan {field} = {value} is not a probability in [0, 1]")
            }
            ConfigError::BadFaultParam { field, value, need } => {
                write!(f, "fault plan {field} = {value}: {need}")
            }
            ConfigError::BadEnv { var, value, need } => {
                write!(f, "environment override {var}={value:?}: {need}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Cycle costs and capacities of the simulated machine. Defaults follow the
/// 150 MHz Cray T3D (Alpha 21064) as characterized by Arpaci et al.
/// (ISCA '95) and the Cray system documentation the paper cites; they are
/// inputs to the model, not fitted outputs.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processing elements.
    pub n_pes: usize,
    /// Direct-mapped data cache lines per PE (256 × 32 B = 8 KB).
    pub cache_lines: usize,
    /// Words (8 B) per cache line.
    pub line_words: usize,

    /// Cache hit.
    pub cache_hit: u64,
    /// Cache miss filled from the PE's own memory.
    pub local_fill: u64,
    /// Cache miss filled from a remote PE's memory.
    pub remote_fill: u64,
    /// Uncached load from local memory.
    pub local_uncached: u64,
    /// Uncached (blocking) load from remote memory.
    pub remote_uncached: u64,
    /// Store to local memory.
    pub write_local: u64,
    /// Buffered store to remote memory.
    pub write_remote: u64,

    /// CRAFT software overhead on a *local* shared access (BASE scheme):
    /// distribution index arithmetic. Local shared data is still cached by
    /// the hardware (the T3D caches all local memory; CRAFT's "shared data
    /// is not cached" applies to *remote* data, which never enters the
    /// cache).
    pub craft_local: u64,
    /// CRAFT software overhead on a *remote* shared access (BASE scheme):
    /// global-address translation and DTB Annex manipulation, on top of the
    /// uncached network access.
    pub craft_remote: u64,
    /// CRAFT local-access overhead for arrays with a *generalized*
    /// distribution (general div/mod address arithmetic; TOMCATV and SWIM
    /// in the paper).
    pub craft_generalized: u64,
    /// `doshared` startup overhead, charged per DOALL *instance* (per
    /// barrier phase) in the BASE scheme. TOMCATV's inner DOALLs execute
    /// ~10^5 instances per run, which is where CRAFT loses badly.
    pub base_epoch_overhead: u64,
    /// Per-DOALL-iteration scheduling overhead of CRAFT's `doshared` under
    /// a generalized distribution (runtime iteration→PE map), BASE scheme.
    pub base_doshared_iter: u64,
    /// Setup overhead of the CCDP codes' manual loop assignment, per DOALL
    /// instance.
    pub ccdp_epoch_overhead: u64,

    /// Issuing one line prefetch.
    pub prefetch_issue: u64,
    /// DTB-Annex entry setup when the prefetch targets a different PE than
    /// the previous one (amortized across consecutive same-PE prefetches).
    pub annex_setup: u64,
    /// Extracting a ready word/line that arrived via the prefetch queue.
    pub queue_pop: u64,
    /// Prefetch queue capacity in words; in-flight prefetches beyond this
    /// are dropped (the covered read then re-fetches coherently).
    pub queue_words: usize,

    /// PE-blocking part of issuing a vector prefetch (`shmem_get` setup).
    pub vector_issue: u64,
    /// Pipeline startup latency of a vector transfer (`shmem_get`'s
    /// software setup dominates: a few microseconds on the T3D).
    pub vector_startup: u64,
    /// Per-word transfer cost of a vector prefetch, in tenths of a cycle.
    pub vector_per_word_tenths: u64,

    /// Occupancy of one snooping-bus coherence transaction (BusRd / BusRdX /
    /// BusUpgr / BusUpd), charged to the issuing PE by the hardware-coherence
    /// backends. Every other active PE is assumed to contend for the same
    /// bus, so each transaction additionally waits the mean residual
    /// occupancy of the other `P - 1` requesters (see `coherence::BusModel`).
    pub bus_txn: u64,
    /// Outstanding bus transactions one PE may have in flight before it
    /// stalls waiting for the oldest to drain (the delayed-message queue of
    /// the hardware backends). Fault-plan queue storms shrink this capacity
    /// at the same hook that storms the prefetch queue.
    pub bus_queue: usize,

    /// Hardware barrier.
    pub barrier: u64,
    /// Per-iteration loop bookkeeping.
    pub loop_overhead: u64,
    /// Fetching one chunk from the dynamic self-scheduling queue.
    pub dynamic_chunk_overhead: u64,
}

impl MachineConfig {
    /// T3D-like defaults for `n_pes` processors.
    pub fn t3d(n_pes: usize) -> Self {
        MachineConfig {
            n_pes,
            cache_lines: 256,
            line_words: 4,
            cache_hit: 1,
            local_fill: 22,
            remote_fill: 150,
            local_uncached: 22,
            remote_uncached: 150,
            write_local: 2,
            write_remote: 10,
            craft_local: 2,
            craft_remote: 25,
            craft_generalized: 2,
            base_epoch_overhead: 600,
            base_doshared_iter: 140,
            ccdp_epoch_overhead: 80,
            prefetch_issue: 7,
            annex_setup: 12,
            queue_pop: 5,
            queue_words: 16,
            vector_issue: 40,
            vector_startup: 600,
            vector_per_word_tenths: 20,
            bus_txn: 8,
            bus_queue: 4,
            barrier: 80,
            loop_overhead: 2,
            dynamic_chunk_overhead: 30,
        }
    }

    /// Total cache capacity in words.
    pub fn cache_words(&self) -> usize {
        self.cache_lines * self.line_words
    }

    /// Check the structural invariants the simulator relies on. The
    /// pipeline entry points call this (surfacing failures as
    /// `PipelineError::InvalidConfig`) so a malformed ablation tweak fails
    /// with a diagnosis instead of a panic or silent nonsense.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_pes == 0 {
            return Err(ConfigError::ZeroPes);
        }
        if self.cache_lines == 0 {
            return Err(ConfigError::NoCacheLines);
        }
        if !self.cache_lines.is_power_of_two() {
            return Err(ConfigError::CacheLinesNotPowerOfTwo { cache_lines: self.cache_lines });
        }
        if self.line_words == 0 {
            return Err(ConfigError::ZeroLineWords);
        }
        if self.queue_words < self.line_words {
            return Err(ConfigError::QueueTooSmall {
                queue_words: self.queue_words,
                line_words: self.line_words,
            });
        }
        for (kind, remote, local) in [
            ("fill", self.remote_fill, self.local_fill),
            ("uncached load", self.remote_uncached, self.local_uncached),
            ("store", self.write_remote, self.write_local),
        ] {
            if remote < local {
                return Err(ConfigError::RemoteNotSlower { kind, remote, local });
            }
        }
        Ok(())
    }
}

/// Which execution scheme the simulator applies to shared data.
#[derive(Clone, Debug)]
pub enum Scheme {
    /// Uniprocessor reference run: one PE, all data local and cached, no
    /// sharing overheads. The denominator of the paper's speedups.
    Sequential,
    /// The paper's BASE codes: CRAFT shared data. Local portions are cached
    /// by the hardware (plus distribution index arithmetic); remote data is
    /// never cached and pays the full network latency plus software
    /// address-translation overhead. Coherent by construction (remote
    /// stores update the owner's cache; nobody caches foreign data).
    Base,
    /// The paper's CCDP codes: shared data cached; reads follow the plan's
    /// handling (`Normal`/`Fresh`/`Bypass`); prefetch operations execute.
    Ccdp { plan: PrefetchPlan },
    /// The invalidate-only software baseline: a CCDP machine whose plan
    /// bypasses the cache on every potentially-stale read and issues no
    /// prefetches (`PrefetchPlan::bypass_all`). Same execution engine as
    /// `Ccdp`, distinct reported identity.
    InvalidateOnly { plan: PrefetchPlan },
    /// Snooping MESI hardware coherence (invalidate-based): shared data is
    /// cached everywhere; misses issue BusRd/BusRdX, writes to shared lines
    /// issue BusUpgr invalidating remote copies. No prefetch plan — the
    /// same IR schedule runs with coherence resolved dynamically by the
    /// [`crate::coherence::CoherenceBackend`].
    Mesi,
    /// Dragon hardware coherence (update-based): writes to lines with
    /// remote sharers broadcast BusUpd, patching every copy in place
    /// instead of invalidating it.
    Dragon,
}

impl Scheme {
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Sequential => "SEQ",
            Scheme::Base => "BASE",
            Scheme::Ccdp { .. } => "CCDP",
            Scheme::InvalidateOnly { .. } => "INV",
            Scheme::Mesi => "MESI",
            Scheme::Dragon => "DRAGON",
        }
    }

    /// The prefetch plan driving shared-read handling, if this scheme is
    /// plan-directed.
    pub fn plan(&self) -> Option<&PrefetchPlan> {
        match self {
            Scheme::Ccdp { plan } | Scheme::InvalidateOnly { plan } => Some(plan),
            _ => None,
        }
    }

    /// Does this scheme resolve coherence in hardware (event-driven
    /// snooping backend, no prefetch plan)?
    pub fn is_hardware(&self) -> bool {
        matches!(self, Scheme::Mesi | Scheme::Dragon)
    }
}

/// Simulation options.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// When `Some(k)`, a `Repeat { count }` block with `count > k` runs only
    /// `k` iterations and extrapolates total cycles from the steady-state
    /// per-iteration delta (numerics then correspond to `k` iterations).
    pub repeat_sample: Option<u32>,
    /// Record up to this many stale-read examples in the oracle report.
    pub oracle_examples: usize,
    /// Capacity of the memory-event trace ring buffer; `0` (the default)
    /// disables tracing. Tracing is observation only — it never changes
    /// simulated cycle counts.
    pub trace_capacity: usize,
    /// Deterministic fault injection (default [`FaultPlan::none`]: nothing
    /// injected, simulation byte-identical to a fault-free build). Faults
    /// may only move cycles, never values — see the `faults` module.
    pub faults: FaultPlan,
    /// Run loops through the reference tree-walking interpreter instead of
    /// the compiled trace (also settable via `CCDP_FORCE_TREEWALK=1`). The
    /// two paths are byte-identical by contract — this exists so the
    /// equivalence test and debugging sessions can pin them against each
    /// other.
    pub force_treewalk: bool,
    /// Abort the run once any PE's cycle counter exceeds this many cycles
    /// ([`SimAbort::BudgetExceeded`]). `None` (the default) = unlimited.
    /// Makes fuzzed/synthesized programs safe to execute: a runaway loop
    /// terminates with a structured error instead of spinning forever.
    pub cycle_budget: Option<u64>,
    /// Abort the run after this many interpreter steps (loop iterations
    /// across all PEs and both execution paths). `None` = unlimited.
    pub step_budget: Option<u64>,
    /// Cooperative wall-clock watchdog: abort with [`SimAbort::WallTimeout`]
    /// once `Instant::now()` passes this deadline. Checked every few
    /// thousand steps so the hot loop stays cheap. Worker threads cannot be
    /// killed from outside, so this is how the harness bounds a cell's wall
    /// time. `None` = no deadline.
    pub wall_deadline: Option<std::time::Instant>,
    /// Worker threads for intra-run PE sharding (also settable via
    /// `CCDP_SIM_THREADS`). `0` or `1` (the default) = serial. With `t > 1`
    /// each software-scheme DOALL epoch is split into `min(t, n_pes)`
    /// contiguous PE blocks simulated concurrently and merged
    /// deterministically at the barrier — byte-identical to the serial run
    /// by contract (`tests/parallel_equivalence.rs`). Hardware schemes
    /// (MESI/Dragon) and wall-deadline runs always take the serial path;
    /// cycle/step-budgeted runs shard only when the epoch is statically
    /// proven disjoint (see [`SimOptions::shard_static`]).
    pub sim_threads: usize,
    /// Consult the static shard-independence analysis (`analysis::shard`)
    /// before sharding a DOALL (also settable via `CCDP_SHARD_STATIC=0|1`).
    /// A statically proven-disjoint epoch skips the per-block access log
    /// and the merge-time conflict scan entirely (pure fork/join), and
    /// becomes eligible for sharding even under cycle/step budgets via
    /// per-block budget slicing. `false` forces the dynamic conflict-log
    /// path for every sharded epoch (the verdict is ignored); results are
    /// byte-identical either way. Default `true`.
    pub shard_static: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            repeat_sample: None,
            oracle_examples: 0,
            trace_capacity: 0,
            faults: FaultPlan::none(),
            force_treewalk: false,
            cycle_budget: None,
            step_budget: None,
            wall_deadline: None,
            sim_threads: 0,
            shard_static: true,
        }
    }
}

/// Why a simulation was aborted before completion. Returned by
/// `Simulator::try_run`; the pipeline surfaces these as
/// `PipelineError::BudgetExceeded` / `PipelineError::Timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimAbort {
    /// A cycle or step budget was exhausted. `pe` is the PE whose counter
    /// tripped the check; `cycles` its counter at that point; `steps` the
    /// machine-wide interpreter step count.
    BudgetExceeded { pe: usize, cycles: u64, steps: u64 },
    /// The cooperative wall-clock deadline passed.
    WallTimeout { pe: usize, steps: u64 },
}

impl std::fmt::Display for SimAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimAbort::BudgetExceeded { pe, cycles, steps } => write!(
                f,
                "simulation budget exceeded on PE {pe}: {cycles} cycles after {steps} steps"
            ),
            SimAbort::WallTimeout { pe, steps } => write!(
                f,
                "simulation wall-clock deadline passed on PE {pe} after {steps} steps"
            ),
        }
    }
}

impl std::error::Error for SimAbort {}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn t3d_defaults_are_consistent() {
        let c = MachineConfig::t3d(8);
        assert_eq!(c.cache_words(), 1024);
        assert!(c.remote_fill > c.local_fill);
        assert!(c.remote_uncached > c.local_uncached);
        assert!(c.queue_words >= c.line_words);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_catches_each_broken_invariant() {
        let ok = MachineConfig::t3d(4);
        let mut c = ok.clone();
        c.n_pes = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroPes));
        let mut c = ok.clone();
        c.cache_lines = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoCacheLines));
        let mut c = ok.clone();
        c.cache_lines = 100;
        assert_eq!(
            c.validate(),
            Err(ConfigError::CacheLinesNotPowerOfTwo { cache_lines: 100 })
        );
        let mut c = ok.clone();
        c.line_words = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroLineWords));
        let mut c = ok.clone();
        c.queue_words = 2;
        assert_eq!(
            c.validate(),
            Err(ConfigError::QueueTooSmall { queue_words: 2, line_words: 4 })
        );
        let mut c = ok.clone();
        c.remote_fill = c.local_fill - 1;
        assert!(matches!(c.validate(), Err(ConfigError::RemoteNotSlower { kind: "fill", .. })));
        // Every error renders a readable message.
        for e in [
            ConfigError::ZeroPes,
            ConfigError::QueueTooSmall { queue_words: 2, line_words: 4 },
            ConfigError::BadFaultRate { field: "drop_rate", value: 2.0 },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Sequential.name(), "SEQ");
        assert_eq!(Scheme::Base.name(), "BASE");
        assert_eq!(Scheme::Mesi.name(), "MESI");
        assert_eq!(Scheme::Dragon.name(), "DRAGON");
        assert!(Scheme::Mesi.is_hardware() && Scheme::Dragon.is_hardware());
        assert!(!Scheme::Base.is_hardware());
        assert!(Scheme::Mesi.plan().is_none());
    }
}
