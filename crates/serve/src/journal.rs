//! Crash-safe job-state journals for the supervised service.
//!
//! Built on `ccdp_bench::journal`'s fingerprinted line-journal machinery
//! (exact-match header, fsync-per-line appends, torn-final-line recovery
//! with atomic compaction), specialized to job lifecycles. Two line kinds:
//!
//! * `{"kind":"job", "fingerprint":…, "spec":{…}}` — appended (and
//!   fsynced) *before* a job is handed to a worker process;
//! * `{"kind":"done", "fingerprint":…, "response":"…"}` — the complete
//!   serialized HTTP response bytes, appended after a deterministic
//!   outcome.
//!
//! **Shared journal directory.** The supervisor keeps one journal per
//! worker slot (`worker-<slot>.jsonl`) in a shared directory, so N slots
//! fsync concurrently instead of serializing on one file. On restart,
//! [`replay_dir`] unions every slot journal, fingerprint-deduped: a job
//! re-dispatched from a dead worker leaves a dangling `job` line in the
//! old slot's journal and a `done` line in the new slot's — the union
//! counts it once, completed. Completed jobs preload the cache (re-asking
//! is byte-identical to the pre-crash answer, headers included); jobs with
//! no `done` line anywhere are re-run before the listener opens.
//!
//! **Bounded growth.** Cache eviction plus resubmission appends fresh
//! `job`/`done` pairs for fingerprints already settled, so an append-only
//! journal grows without bound under a duplicate storm. When a slot
//! journal exceeds its byte threshold it is compacted: superseded lines
//! (any line for a fingerprint that has a later `done`, and older
//! duplicates of the same kind) are dropped and the file is atomically
//! rewritten (temp + rename + dir fsync — a crash mid-compaction leaves
//! either the old or the new complete journal, never a mix). The
//! compaction invariants: the replayed completed set maps every
//! fingerprint to its *latest* response bytes, and no incomplete job is
//! ever dropped.

use std::path::{Path, PathBuf};

use ccdp_bench::journal::Journal;
use ccdp_json::{Json, ToJson};

use crate::api::JobSpec;

/// Default compaction threshold for slot journals. Crossing it triggers a
/// compacting rewrite; live state (distinct fingerprints) can legitimately
/// exceed it, so it bounds *garbage*, not state.
pub const DEFAULT_COMPACT_BYTES: u64 = 4 * 1024 * 1024;

/// Exact-match header line; any other first line means "not our journal,
/// start fresh" (same contract as the benchmark grid journal). Schema 2:
/// per-slot journals in a shared directory, compaction may drop superseded
/// lines.
pub fn header() -> String {
    Json::obj([
        ("kind", "header".to_json()),
        ("tool", "ccdpd".to_json()),
        ("schema", 2u64.to_json()),
    ])
    .to_string()
}

/// Slot journal path inside the shared directory.
pub fn slot_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(format!("worker-{slot}.jsonl"))
}

fn job_line(fp: &str, spec: &JobSpec) -> String {
    Json::obj([
        ("kind", "job".to_json()),
        ("fingerprint", fp.to_json()),
        ("spec", spec.to_json()),
    ])
    .to_string()
}

fn done_line(fp: &str, response: &[u8]) -> String {
    let text = std::str::from_utf8(response).unwrap_or("");
    Json::obj([
        ("kind", "done".to_json()),
        ("fingerprint", fp.to_json()),
        ("response", text.to_json()),
    ])
    .to_string()
}

/// What a journal replay recovered.
#[derive(Default)]
pub struct Replay {
    /// `(fingerprint, response bytes)` of completed jobs, in journal order.
    pub completed: Vec<(String, Vec<u8>)>,
    /// Specs journaled but never completed (in-flight at crash time),
    /// fingerprint-deduped against `completed` and each other.
    pub incomplete: Vec<(String, JobSpec)>,
}

/// One worker slot's journal: a mutex over the fsyncing appender (the
/// dispatching thread and nobody else writes it, but `&self` recording
/// keeps the supervisor's sharing simple), with threshold-triggered
/// compaction.
pub struct JobJournal {
    inner: Journal,
    compact_bytes: u64,
}

impl JobJournal {
    /// Open (resuming) or create (truncating) a journal at `path`.
    /// `compact_bytes == 0` disables compaction.
    pub fn open(
        path: &Path,
        resume: bool,
        compact_bytes: u64,
    ) -> std::io::Result<(JobJournal, Replay)> {
        if !resume {
            let j = Journal::create(path, &header())?;
            return Ok((JobJournal { inner: j, compact_bytes }, Replay::default()));
        }
        let (j, lines) =
            Journal::resume_lines(path, &header(), |l| ccdp_json::parse(l).is_ok())?;
        let mut replay = Replay::default();
        fold_lines(&mut replay, lines.iter().map(String::as_str));
        Ok((JobJournal { inner: j, compact_bytes }, replay))
    }

    /// Create a fresh journal at `path` pre-seeded with `done` lines (the
    /// redistributed completed set of a directory resume). The seed lines
    /// are written in one atomic batch, not fsynced one by one.
    pub fn create_with_done(
        path: &Path,
        completed: &[(String, Vec<u8>)],
        compact_bytes: u64,
    ) -> std::io::Result<JobJournal> {
        let j = Journal::create(path, &header())?;
        let lines: Vec<String> =
            completed.iter().map(|(fp, bytes)| done_line(fp, bytes)).collect();
        j.rewrite(&header(), &lines)?;
        Ok(JobJournal { inner: j, compact_bytes })
    }

    /// Record a job before it is dispatched. The fsync in `append_line`
    /// makes this the durability point: after it returns, a crash anywhere
    /// in the computation leaves a replayable record.
    pub fn record_job(&self, fp: &str, spec: &JobSpec) -> std::io::Result<()> {
        self.inner.append_line(&job_line(fp, spec))?;
        self.maybe_compact()
    }

    /// Record a deterministic outcome: the complete response bytes. The
    /// response is HTTP text (ASCII head + JSON body), stored as one JSON
    /// string.
    pub fn record_done(&self, fp: &str, response: &[u8]) -> std::io::Result<()> {
        self.inner.append_line(&done_line(fp, response))?;
        self.maybe_compact()
    }

    /// Current on-disk size (observability and the growth-bound test).
    pub fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    fn maybe_compact(&self) -> std::io::Result<()> {
        if self.compact_bytes == 0 || self.inner.bytes() <= self.compact_bytes {
            return Ok(());
        }
        let lines = self.inner.lines()?;
        let compacted = compact_lines(&lines);
        // Only rewrite when compaction actually reclaims space; a journal
        // full of live distinct state would otherwise rewrite on every
        // append past the threshold.
        if compacted.len() < lines.len() {
            self.inner.rewrite(&header(), &compacted)?;
        }
        Ok(())
    }
}

/// Pure compaction: drop superseded lines. A `done` supersedes every
/// earlier line for its fingerprint (the job is settled; replay needs only
/// the latest response bytes); a later duplicate of the same kind
/// supersedes an earlier one. First-seen order is preserved so replay
/// order stays stable.
pub fn compact_lines(lines: &[String]) -> Vec<String> {
    use std::collections::HashMap;
    let mut order: Vec<String> = Vec::new();
    let mut jobs: HashMap<String, &String> = HashMap::new();
    let mut dones: HashMap<String, &String> = HashMap::new();
    for line in lines {
        let Ok(doc) = ccdp_json::parse(line) else { continue };
        let Some(fp) = doc.get("fingerprint").and_then(Json::as_str) else { continue };
        if fp.is_empty() {
            continue;
        }
        let is_job = match doc.get("kind").and_then(Json::as_str) {
            Some("job") => true,
            Some("done") => false,
            _ => continue,
        };
        if !jobs.contains_key(fp) && !dones.contains_key(fp) {
            order.push(fp.to_string());
        }
        if is_job {
            jobs.insert(fp.to_string(), line);
        } else {
            dones.insert(fp.to_string(), line);
        }
    }
    order
        .iter()
        .filter_map(|fp| dones.get(fp).or_else(|| jobs.get(fp)))
        .map(|l| (*l).to_string())
        .collect()
}

/// Fold journal lines into a replay, fingerprint-deduped: a `done` settles
/// its fingerprint (later `done`s overwrite the bytes — byte-identical by
/// construction anyway), and `job` lines only count while unsettled.
fn fold_lines<'a>(replay: &mut Replay, lines: impl Iterator<Item = &'a str>) {
    for line in lines {
        let Ok(doc) = ccdp_json::parse(line) else { continue };
        let fp = doc.get("fingerprint").and_then(Json::as_str).unwrap_or("");
        if fp.is_empty() {
            continue;
        }
        match doc.get("kind").and_then(Json::as_str) {
            Some("job") => {
                let Some(spec_json) = doc.get("spec") else { continue };
                // `default_deadline_ms` is irrelevant: journaled specs
                // always carry an explicit deadline.
                if let Ok(spec) = JobSpec::from_json(spec_json, 5000) {
                    let seen = replay.incomplete.iter().any(|(f, _)| f == fp)
                        || replay.completed.iter().any(|(f, _)| f == fp);
                    if !seen {
                        replay.incomplete.push((fp.to_string(), spec));
                    }
                }
            }
            Some("done") => {
                if let Some(resp) = doc.get("response").and_then(Json::as_str) {
                    replay.incomplete.retain(|(f, _)| f != fp);
                    if let Some(slot) =
                        replay.completed.iter_mut().find(|(f, _)| f == fp)
                    {
                        slot.1 = resp.as_bytes().to_vec();
                    } else {
                        replay.completed.push((fp.to_string(), resp.as_bytes().to_vec()));
                    }
                }
            }
            _ => {}
        }
    }
}

/// List the slot journals present in `dir`, sorted by slot number.
pub fn dir_journals(dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut found: Vec<(usize, PathBuf)> = rd
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let slot: usize =
                name.strip_prefix("worker-")?.strip_suffix(".jsonl")?.parse().ok()?;
            Some((slot, e.path()))
        })
        .collect();
    found.sort_by_key(|(slot, _)| *slot);
    found.into_iter().map(|(_, p)| p).collect()
}

/// Union-replay every slot journal in `dir` (tolerating a missing
/// directory), fingerprint-deduped across files: completed anywhere wins
/// over incomplete anywhere — the cross-file signature of a re-dispatched
/// job.
pub fn replay_dir(dir: &Path) -> Replay {
    let mut replay = Replay::default();
    for path in dir_journals(dir) {
        let text = match std::fs::read(&path) {
            Ok(t) => String::from_utf8_lossy(&t).into_owned(),
            Err(_) => continue,
        };
        let mut lines = text.lines();
        if lines.next() != Some(header().as_str()) {
            eprintln!("ccdpd: journal {} has a foreign header; skipped", path.display());
            continue;
        }
        fold_lines(&mut replay, lines.take_while(|l| ccdp_json::parse(l).is_ok()));
    }
    // Incomplete jobs completed in a *later* file were already retained
    // correctly (fold_lines settles across calls); nothing more to dedupe.
    replay
}

/// Prepare the shared journal directory for `n_slots` workers.
///
/// Without `resume`: every slot journal starts fresh and stale
/// `worker-*.jsonl` files from a previous larger fleet are removed.
///
/// With `resume`: the directory is union-replayed first; the completed set
/// is redistributed round-robin into fresh compacted slot journals (so
/// repeated crash/resume cycles re-bound the files instead of accreting
/// dangling `job` lines), and the deduped incomplete set is returned for
/// the caller to re-run.
pub fn open_dir(
    dir: &Path,
    n_slots: usize,
    resume: bool,
    compact_bytes: u64,
) -> std::io::Result<(Vec<JobJournal>, Replay)> {
    std::fs::create_dir_all(dir)?;
    let replay = if resume { replay_dir(dir) } else { Replay::default() };
    // Remove every existing slot file; survivors are rebuilt below.
    for path in dir_journals(dir) {
        std::fs::remove_file(&path).ok();
    }
    let mut shares: Vec<Vec<(String, Vec<u8>)>> = (0..n_slots).map(|_| Vec::new()).collect();
    for (i, entry) in replay.completed.iter().enumerate() {
        shares[i % n_slots].push(entry.clone());
    }
    let mut journals = Vec::with_capacity(n_slots);
    for (slot, share) in shares.iter().enumerate() {
        journals.push(JobJournal::create_with_done(
            &slot_path(dir, slot),
            share,
            compact_bytes,
        )?);
    }
    Ok((journals, replay))
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::api::sample_program;
    use ccdp_core::Scheme;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ccdpd-journal-test-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec_sized(size: usize) -> JobSpec {
        JobSpec {
            program_text: sample_program(size, 1),
            n_pes: 2,
            schemes: vec![Scheme::Base, Scheme::Ccdp],
            deadline_ms: 3000,
        }
    }

    fn spec() -> JobSpec {
        spec_sized(8)
    }

    #[test]
    fn job_then_done_replays_completed() {
        let path = tmp("done").join("jobs.jsonl");
        let (j, _) = JobJournal::open(&path, false, 0).unwrap();
        let s = spec();
        let fp = s.fingerprint().to_hex();
        j.record_job(&fp, &s).unwrap();
        j.record_done(&fp, b"HTTP/1.1 200 OK\r\n\r\n{}").unwrap();
        drop(j);
        let (_, replay) = JobJournal::open(&path, true, 0).unwrap();
        assert!(replay.incomplete.is_empty());
        assert_eq!(replay.completed.len(), 1);
        assert_eq!(replay.completed[0].0, fp);
        assert_eq!(replay.completed[0].1, b"HTTP/1.1 200 OK\r\n\r\n{}");
    }

    #[test]
    fn job_without_done_replays_incomplete() {
        let path = tmp("incomplete").join("jobs.jsonl");
        let (j, _) = JobJournal::open(&path, false, 0).unwrap();
        let s = spec();
        let fp = s.fingerprint().to_hex();
        j.record_job(&fp, &s).unwrap();
        drop(j);
        let (_, replay) = JobJournal::open(&path, true, 0).unwrap();
        assert_eq!(replay.completed.len(), 0);
        assert_eq!(replay.incomplete.len(), 1);
        assert_eq!(replay.incomplete[0].0, fp);
        assert_eq!(replay.incomplete[0].1, s);
    }

    #[test]
    fn torn_final_line_is_dropped_and_journal_reusable() {
        let path = tmp("torn").join("jobs.jsonl");
        let (j, _) = JobJournal::open(&path, false, 0).unwrap();
        let s = spec();
        let fp = s.fingerprint().to_hex();
        j.record_job(&fp, &s).unwrap();
        j.record_done(&fp, b"response-bytes").unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn, unparseable tail.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"kind\":\"job\",\"finger").unwrap();
        drop(f);
        let (j2, replay) = JobJournal::open(&path, true, 0).unwrap();
        assert_eq!(replay.completed.len(), 1);
        assert!(replay.incomplete.is_empty());
        // Compaction removed the torn tail; the journal accepts appends.
        j2.record_job("feedbeef", &s).unwrap();
        drop(j2);
        let (_, replay2) = JobJournal::open(&path, true, 0).unwrap();
        assert_eq!(replay2.incomplete.len(), 1);
        assert_eq!(replay2.incomplete[0].0, "feedbeef");
    }

    #[test]
    fn fresh_open_truncates() {
        let path = tmp("fresh").join("jobs.jsonl");
        let (j, _) = JobJournal::open(&path, false, 0).unwrap();
        j.record_job("aaaa", &spec()).unwrap();
        drop(j);
        let (_, replay) = JobJournal::open(&path, false, 0).unwrap();
        assert!(replay.incomplete.is_empty() && replay.completed.is_empty());
    }

    #[test]
    fn compact_lines_drops_superseded_keeps_incomplete() {
        let s = spec();
        let lines = vec![
            job_line("aa", &s),
            done_line("aa", b"resp-a-v1"),
            job_line("bb", &s),          // incomplete: must survive
            job_line("aa", &s),          // resubmission after eviction
            done_line("aa", b"resp-a-v2"), // supersedes everything for aa
            done_line("cc", b"resp-c"),
            done_line("cc", b"resp-c"),  // duplicate done
        ];
        let out = compact_lines(&lines);
        assert_eq!(out.len(), 3, "{out:?}");
        assert_eq!(out[0], done_line("aa", b"resp-a-v2"));
        assert_eq!(out[1], job_line("bb", &s));
        assert_eq!(out[2], done_line("cc", b"resp-c"));
        // Replay of the compacted form equals replay of the original.
        let mut full = Replay::default();
        fold_lines(&mut full, lines.iter().map(String::as_str));
        let mut compacted = Replay::default();
        fold_lines(&mut compacted, out.iter().map(String::as_str));
        assert_eq!(full.completed, compacted.completed);
        assert_eq!(
            full.incomplete.iter().map(|(f, _)| f).collect::<Vec<_>>(),
            compacted.incomplete.iter().map(|(f, _)| f).collect::<Vec<_>>()
        );
    }

    /// The growth bound under a duplicate storm: the same few fingerprints
    /// journaled over and over (the cache-evict + resubmit pattern) must
    /// not grow the file past threshold + one generation of live state.
    #[test]
    fn duplicate_storm_journal_is_bounded() {
        let path = tmp("bounded").join("jobs.jsonl");
        let threshold = 8 * 1024u64;
        let (j, _) = JobJournal::open(&path, false, threshold).unwrap();
        let specs: Vec<JobSpec> = (8..13).map(spec_sized).collect();
        let fps: Vec<String> = specs.iter().map(|s| s.fingerprint().to_hex()).collect();
        let resp = vec![b'r'; 600];
        let mut high_water = 0u64;
        for round in 0..200 {
            let i = round % specs.len();
            j.record_job(&fps[i], &specs[i]).unwrap();
            j.record_done(&fps[i], &resp).unwrap();
            high_water = high_water.max(j.bytes());
        }
        // Live state: 5 done lines (~700 B each). The bound: the threshold
        // plus at most one uncompacted entry pair.
        let entry_slack = 2 * (specs[0].program_text.len() as u64 + resp.len() as u64 + 200);
        assert!(
            high_water <= threshold + entry_slack,
            "journal grew to {high_water} bytes (threshold {threshold})"
        );
        assert!(std::fs::metadata(&path).unwrap().len() <= threshold + entry_slack);
        // Replay after the storm: exactly the 5 live fingerprints, latest
        // bytes, nothing incomplete.
        drop(j);
        let (_, replay) = JobJournal::open(&path, true, threshold).unwrap();
        assert!(replay.incomplete.is_empty());
        assert_eq!(replay.completed.len(), specs.len());
        for (fp, bytes) in &replay.completed {
            assert!(fps.contains(fp));
            assert_eq!(bytes, &resp);
        }
    }

    /// The shared-directory union: a job dispatched to slot 0 (dangling
    /// `job` line after its worker died) and completed by slot 1 replays
    /// as completed, exactly once.
    #[test]
    fn dir_replay_dedupes_redispatched_jobs_across_slots() {
        let dir = tmp("dirdedupe");
        let s = spec();
        let fp = s.fingerprint().to_hex();
        let (j0, _) = JobJournal::open(&slot_path(&dir, 0), false, 0).unwrap();
        let (j1, _) = JobJournal::open(&slot_path(&dir, 1), false, 0).unwrap();
        j0.record_job(&fp, &s).unwrap(); // worker 0 died mid-job
        j1.record_job(&fp, &s).unwrap(); // re-dispatched to worker 1
        j1.record_done(&fp, b"the-bytes").unwrap();
        let other = spec_sized(9);
        let ofp = other.fingerprint().to_hex();
        j0.record_job(&ofp, &other).unwrap(); // genuinely in-flight at crash
        drop((j0, j1));

        let replay = replay_dir(&dir);
        assert_eq!(replay.completed.len(), 1);
        assert_eq!(replay.completed[0], (fp, b"the-bytes".to_vec()));
        assert_eq!(replay.incomplete.len(), 1);
        assert_eq!(replay.incomplete[0].0, ofp);
    }

    /// `open_dir` with resume: completed entries are redistributed into
    /// fresh compacted slot journals (a second resume still replays them),
    /// stale slot files beyond the new fleet size are removed, and the
    /// incomplete set is returned.
    #[test]
    fn open_dir_resume_redistributes_and_prunes() {
        let dir = tmp("opendir");
        for slot in 0..3 {
            let (j, _) = JobJournal::open(&slot_path(&dir, slot), false, 0).unwrap();
            let s = spec_sized(8 + slot);
            let fp = s.fingerprint().to_hex();
            j.record_job(&fp, &s).unwrap();
            if slot != 2 {
                j.record_done(&fp, format!("resp-{slot}").as_bytes()).unwrap();
            }
        }
        let (journals, replay) = open_dir(&dir, 2, true, 0).unwrap();
        assert_eq!(journals.len(), 2);
        assert_eq!(replay.completed.len(), 2);
        assert_eq!(replay.incomplete.len(), 1);
        assert_eq!(replay.incomplete[0].0, spec_sized(10).fingerprint().to_hex());
        assert!(!slot_path(&dir, 2).exists(), "stale slot file must be pruned");
        drop(journals);
        // Second resume: the redistributed done lines are still there.
        let replay2 = replay_dir(&dir);
        assert_eq!(replay2.completed.len(), 2);
        assert!(replay2.incomplete.is_empty(), "resume rewrote journals compacted");
    }

    #[test]
    fn open_dir_fresh_clears_everything() {
        let dir = tmp("opendirfresh");
        let (j, _) = JobJournal::open(&slot_path(&dir, 0), false, 0).unwrap();
        j.record_job("aaaa", &spec()).unwrap();
        drop(j);
        let (journals, replay) = open_dir(&dir, 2, false, 0).unwrap();
        assert_eq!(journals.len(), 2);
        assert!(replay.completed.is_empty() && replay.incomplete.is_empty());
        let replay2 = replay_dir(&dir);
        assert!(replay2.completed.is_empty() && replay2.incomplete.is_empty());
    }
}
