//! Crash-safe job-state journal for the service.
//!
//! Built on `ccdp_bench::journal`'s fingerprinted line-journal machinery
//! (exact-match header, fsync-per-line appends, torn-final-line recovery
//! with atomic compaction), specialized to job lifecycles. Two line kinds:
//!
//! * `{"kind":"job", "fingerprint":…, "spec":{…}}` — appended (and
//!   fsynced) *before* a leader starts computing;
//! * `{"kind":"done", "fingerprint":…, "response":"…"}` — the complete
//!   serialized HTTP response bytes, appended after a deterministic
//!   outcome.
//!
//! On restart, `open` with `resume` replays the journal: every completed
//! job's response is preloaded into the cache (so re-asking is
//! byte-identical to the pre-crash answer, headers included), and every
//! job line without a matching done line is re-run before the listener
//! opens (deterministic pipeline → the recomputed response is the one the
//! crashed process would have produced).

use std::path::Path;

use ccdp_bench::journal::Journal;
use ccdp_json::{Json, ToJson};

use crate::api::JobSpec;

/// Exact-match header line; any other first line means "not our journal,
/// start fresh" (same contract as the benchmark grid journal).
pub fn header() -> String {
    Json::obj([
        ("kind", "header".to_json()),
        ("tool", "ccdpd".to_json()),
        ("schema", 1u64.to_json()),
    ])
    .to_string()
}

/// What a journal replay recovered.
#[derive(Default)]
pub struct Replay {
    /// `(fingerprint, response bytes)` of completed jobs, in journal order.
    pub completed: Vec<(String, Vec<u8>)>,
    /// Specs journaled but never completed (in-flight at crash time).
    pub incomplete: Vec<(String, JobSpec)>,
}

/// The live journal: a mutex over the fsyncing appender, because multiple
/// workers record concurrently and journal lines must not interleave.
pub struct JobJournal {
    inner: std::sync::Mutex<Journal>,
}

impl JobJournal {
    /// Open (resuming) or create (truncating) the journal at `path`.
    pub fn open(path: &Path, resume: bool) -> std::io::Result<(JobJournal, Replay)> {
        if !resume {
            let j = Journal::create(path, &header())?;
            return Ok((JobJournal { inner: std::sync::Mutex::new(j) }, Replay::default()));
        }
        let (j, lines) =
            Journal::resume_lines(path, &header(), |l| ccdp_json::parse(l).is_ok())?;
        let mut replay = Replay::default();
        for line in &lines {
            let Ok(doc) = ccdp_json::parse(line) else { continue };
            let fp = doc.get("fingerprint").and_then(Json::as_str).unwrap_or("");
            if fp.is_empty() {
                continue;
            }
            match doc.get("kind").and_then(Json::as_str) {
                Some("job") => {
                    let Some(spec_json) = doc.get("spec") else { continue };
                    // `default_deadline_ms` is irrelevant: journaled specs
                    // always carry an explicit deadline.
                    if let Ok(spec) = JobSpec::from_json(spec_json, 5000) {
                        if !replay.incomplete.iter().any(|(f, _)| f == fp) {
                            replay.incomplete.push((fp.to_string(), spec));
                        }
                    }
                }
                Some("done") => {
                    if let Some(resp) = doc.get("response").and_then(Json::as_str) {
                        replay.incomplete.retain(|(f, _)| f != fp);
                        replay
                            .completed
                            .push((fp.to_string(), resp.as_bytes().to_vec()));
                    }
                }
                _ => {}
            }
        }
        Ok((JobJournal { inner: std::sync::Mutex::new(j) }, replay))
    }

    /// Record a job before its leader starts computing. The fsync in
    /// `append_line` makes this the durability point: after it returns, a
    /// crash anywhere in the computation leaves a replayable record.
    pub fn record_job(&self, fp: &str, spec: &JobSpec) -> std::io::Result<()> {
        let line = Json::obj([
            ("kind", "job".to_json()),
            ("fingerprint", fp.to_json()),
            ("spec", spec.to_json()),
        ])
        .to_string();
        self.inner.lock().unwrap().append_line(&line)
    }

    /// Record a deterministic outcome: the complete response bytes. The
    /// response is HTTP text (ASCII head + JSON body), stored as one JSON
    /// string.
    pub fn record_done(&self, fp: &str, response: &[u8]) -> std::io::Result<()> {
        let text = std::str::from_utf8(response).unwrap_or("");
        let line = Json::obj([
            ("kind", "done".to_json()),
            ("fingerprint", fp.to_json()),
            ("response", text.to_json()),
        ])
        .to_string();
        self.inner.lock().unwrap().append_line(&line)
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::api::sample_program;
    use ccdp_core::Scheme;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("ccdpd-journal-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("jobs.jsonl")
    }

    fn spec() -> JobSpec {
        JobSpec {
            program_text: sample_program(8, 1),
            n_pes: 2,
            schemes: vec![Scheme::Base, Scheme::Ccdp],
            deadline_ms: 3000,
        }
    }

    #[test]
    fn job_then_done_replays_completed() {
        let path = tmp("done");
        let (j, _) = JobJournal::open(&path, false).unwrap();
        let s = spec();
        let fp = s.fingerprint().to_hex();
        j.record_job(&fp, &s).unwrap();
        j.record_done(&fp, b"HTTP/1.1 200 OK\r\n\r\n{}").unwrap();
        drop(j);
        let (_, replay) = JobJournal::open(&path, true).unwrap();
        assert!(replay.incomplete.is_empty());
        assert_eq!(replay.completed.len(), 1);
        assert_eq!(replay.completed[0].0, fp);
        assert_eq!(replay.completed[0].1, b"HTTP/1.1 200 OK\r\n\r\n{}");
    }

    #[test]
    fn job_without_done_replays_incomplete() {
        let path = tmp("incomplete");
        let (j, _) = JobJournal::open(&path, false).unwrap();
        let s = spec();
        let fp = s.fingerprint().to_hex();
        j.record_job(&fp, &s).unwrap();
        drop(j);
        let (_, replay) = JobJournal::open(&path, true).unwrap();
        assert_eq!(replay.completed.len(), 0);
        assert_eq!(replay.incomplete.len(), 1);
        assert_eq!(replay.incomplete[0].0, fp);
        assert_eq!(replay.incomplete[0].1, s);
    }

    #[test]
    fn torn_final_line_is_dropped_and_journal_reusable() {
        let path = tmp("torn");
        let (j, _) = JobJournal::open(&path, false).unwrap();
        let s = spec();
        let fp = s.fingerprint().to_hex();
        j.record_job(&fp, &s).unwrap();
        j.record_done(&fp, b"response-bytes").unwrap();
        drop(j);
        // Simulate a crash mid-append: a torn, unparseable tail.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"kind\":\"job\",\"finger").unwrap();
        drop(f);
        let (j2, replay) = JobJournal::open(&path, true).unwrap();
        assert_eq!(replay.completed.len(), 1);
        assert!(replay.incomplete.is_empty());
        // Compaction removed the torn tail; the journal accepts appends.
        j2.record_job("feedbeef", &s).unwrap();
        drop(j2);
        let (_, replay2) = JobJournal::open(&path, true).unwrap();
        assert_eq!(replay2.incomplete.len(), 1);
        assert_eq!(replay2.incomplete[0].0, "feedbeef");
    }

    #[test]
    fn fresh_open_truncates() {
        let path = tmp("fresh");
        let (j, _) = JobJournal::open(&path, false).unwrap();
        j.record_job("aaaa", &spec()).unwrap();
        drop(j);
        let (_, replay) = JobJournal::open(&path, false).unwrap();
        assert!(replay.incomplete.is_empty() && replay.completed.is_empty());
    }
}
