//! Job API: the JSON request/response contract and the job runner.
//!
//! A job is "run this IR program through verify → plan → simulate at this
//! PE count for these schemes". Specs are content-fingerprinted (program
//! text, PE count, scheme set — everything that determines the result;
//! the deadline only determines whether the job *finishes*, so it stays
//! out of the key). The runner executes under the simulator's own budgets
//! plus a per-job wall deadline, with panic containment and
//! exponential-backoff retries for the flaky failure classes of the
//! `bench::resilience` taxonomy — deterministic failures are never
//! retried, they are answered (and cached) as structured errors.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use ccdp_bench::resilience::{classify_pipeline, CellFailure};
use ccdp_core::{compare, Fingerprint, Fingerprinter, PipelineConfig, Scheme};
use ccdp_ir::parse_program;
use ccdp_json::{Json, ToJson};
use t3d_sim::SimOptions;

pub const DEFAULT_N_PES: usize = 4;
pub const MAX_N_PES: usize = 64;
/// Per-job simulator budgets: generous for real kernels, final for runaway
/// submissions. A hostile program terminates with `budget_exceeded`, not by
/// pinning a worker.
pub const CYCLE_BUDGET: u64 = 2_000_000_000;
pub const STEP_BUDGET: u64 = 200_000_000;

/// Retry policy for flaky failures (panicked / timed out). Deterministic
/// failures never re-enter this loop.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before retry k is `base_backoff * 2^(k-1)`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_backoff: Duration::from_millis(25) }
    }
}

/// One validated job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    pub program_text: String,
    pub n_pes: usize,
    pub schemes: Vec<Scheme>,
    pub deadline_ms: u64,
}

impl JobSpec {
    /// Parse and validate the POST body. Errors are client-facing
    /// messages (the `bad_request` envelope).
    pub fn from_json(doc: &Json, default_deadline_ms: u64) -> Result<JobSpec, String> {
        let program_text = doc
            .get("program")
            .and_then(Json::as_str)
            .ok_or("missing string field \"program\" (textual IR)")?
            .to_string();
        let n_pes = match doc.get("n_pes") {
            None => DEFAULT_N_PES,
            Some(v) => match v.as_u64() {
                Some(n) if (2..=MAX_N_PES as u64).contains(&n) => n as usize,
                _ => return Err(format!("\"n_pes\" must be an integer in 2..={MAX_N_PES}")),
            },
        };
        let schemes = match doc.get("schemes") {
            None => vec![Scheme::Base, Scheme::Ccdp],
            Some(v) => {
                let mut out = Vec::new();
                for item in v.items() {
                    let key = item.as_str().ok_or("\"schemes\" must be an array of strings")?;
                    let s = Scheme::parse(key)
                        .ok_or_else(|| format!("unknown scheme {key:?}"))?;
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
                if out.is_empty() {
                    return Err("\"schemes\" must name at least one scheme".to_string());
                }
                out
            }
        };
        let deadline_ms = match doc.get("deadline_ms") {
            None => default_deadline_ms,
            Some(v) => match v.as_u64() {
                Some(ms) if ms > 0 => ms,
                _ => return Err("\"deadline_ms\" must be a positive integer".to_string()),
            },
        };
        Ok(JobSpec { program_text, n_pes, schemes, deadline_ms })
    }

    /// The journal form; `from_json` of this round-trips exactly.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("program", self.program_text.to_json()),
            ("n_pes", self.n_pes.to_json()),
            ("schemes", Json::arr(self.schemes.iter().map(|s| s.key().to_json()))),
            ("deadline_ms", self.deadline_ms.to_json()),
        ])
    }

    /// Content fingerprint: everything that determines the response bytes.
    /// Scheme order matters (the response lists schemes in request order).
    pub fn fingerprint(&self) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        fp.write_str(&self.program_text);
        fp.write_u64(self.n_pes as u64);
        for s in &self.schemes {
            fp.write_str(s.key());
        }
        fp.finish()
    }
}

/// The runner's verdict plus the response document.
pub struct JobResult {
    /// Response body (the JSON envelope).
    pub body: Json,
    /// HTTP status for the body.
    pub status: (u16, &'static str),
    /// Deterministic outcome — safe to cache and journal. Flaky outcomes
    /// (timeout, panic) are answered but recomputed on the next ask.
    pub cacheable: bool,
    /// Flaky retries actually performed (observability only; never in the
    /// body, which must stay deterministic).
    pub retries: u32,
}

/// `(status, reason)` for a structured failure code.
fn failure_status(code: &str) -> (u16, &'static str) {
    match code {
        "invalid_program" | "invalid" => (400, "Bad Request"),
        // Deterministic semantic failures: the job is well-formed but its
        // result is a (structured, cacheable) rejection.
        "failed" | "budget_exceeded" => (422, "Unprocessable Entity"),
        "timeout" => (504, "Gateway Timeout"),
        _ => (500, "Internal Server Error"), // panicked
    }
}

/// Build the error envelope shared by every structured failure.
pub fn error_body(code: &str, message: &str, extra: Vec<(&'static str, Json)>) -> Json {
    let mut fields = vec![
        ("status".to_string(), "error".to_json()),
        ("code".to_string(), code.to_json()),
        ("message".to_string(), message.to_json()),
    ];
    fields.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(fields)
}

/// Run one job to a deterministic-or-final verdict.
pub fn run_job(spec: &JobSpec, retry: &RetryPolicy) -> JobResult {
    let fp = spec.fingerprint().to_hex();
    // Parse failures are deterministic and cheap: classify before entering
    // the retry loop or touching the simulator.
    let program = match parse_program(&spec.program_text) {
        Ok(p) => p,
        Err(e) => {
            return JobResult {
                body: error_body(
                    "invalid_program",
                    &e.to_string(),
                    vec![("fingerprint", fp.to_json())],
                ),
                status: failure_status("invalid_program"),
                cacheable: true,
                retries: 0,
            };
        }
    };

    let mut retries = 0u32;
    let failure = loop {
        let deadline = Instant::now() + Duration::from_millis(spec.deadline_ms);
        let cfg = PipelineConfig::t3d(spec.n_pes).with_verify(true).with_sim(SimOptions {
            cycle_budget: Some(CYCLE_BUDGET),
            step_budget: Some(STEP_BUDGET),
            wall_deadline: Some(deadline),
            ..SimOptions::default()
        });
        let attempt = catch_unwind(AssertUnwindSafe(|| compare(&program, &cfg, &spec.schemes)));
        let failure = match attempt {
            Ok(Ok(matrix)) => {
                return JobResult {
                    body: ok_body(&fp, spec, &matrix),
                    status: (200, "OK"),
                    cacheable: true,
                    retries,
                };
            }
            Ok(Err(e)) => classify_pipeline(e),
            Err(panic) => CellFailure::Panicked {
                message: panic_message(panic),
                retried: retries > 0,
            },
        };
        // Same flaky/deterministic split as the benchmark grid: only
        // panics and wall timeouts can be transient.
        let flaky =
            matches!(failure, CellFailure::Panicked { .. } | CellFailure::TimedOut { .. });
        if !flaky || retries + 1 >= retry.max_attempts {
            break failure;
        }
        std::thread::sleep(retry.base_backoff * 2u32.pow(retries));
        retries += 1;
    };

    let code = match &failure {
        CellFailure::Panicked { .. } => "panicked",
        CellFailure::TimedOut { .. } => "timeout",
        CellFailure::BudgetExceeded { .. } => "budget_exceeded",
        CellFailure::Invalid { .. } => "invalid",
        CellFailure::Failed { .. } => "failed",
    };
    let flaky = matches!(failure, CellFailure::Panicked { .. } | CellFailure::TimedOut { .. });
    JobResult {
        body: error_body(code, &failure.to_string(), vec![("fingerprint", fp.to_json())]),
        status: failure_status(code),
        cacheable: !flaky,
        retries,
    }
}

fn ok_body(fp: &str, spec: &JobSpec, m: &ccdp_core::SchemeMatrix) -> Json {
    let schemes = Json::Obj(
        spec.schemes
            .iter()
            .map(|&s| {
                let mut fields = vec![("cycles".to_string(), m.cycles(s).unwrap().to_json())];
                if let Some(sp) = m.speedup(s) {
                    fields.push(("speedup".to_string(), sp.to_json()));
                }
                if let Some(imp) = m.improvement_over_base(s) {
                    fields.push(("improvement_over_base_pct".to_string(), imp.to_json()));
                }
                (s.key().to_string(), Json::Obj(fields))
            })
            .collect(),
    );
    let mut fields = vec![
        ("status".to_string(), "ok".to_json()),
        ("fingerprint".to_string(), fp.to_json()),
        ("n_pes".to_string(), m.n_pes.to_json()),
        ("seq_cycles".to_string(), m.seq.cycles.to_json()),
        ("schemes".to_string(), schemes),
        ("stale_reads".to_string(), m.stale_reads.to_json()),
        ("shared_reads".to_string(), m.shared_reads.to_json()),
    ];
    if let Some(p) = m.improvement_pct() {
        fields.push(("improvement_pct".to_string(), p.to_json()));
    }
    Json::Obj(fields)
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A small parameterized kernel in the textual IR, shared by the load
/// generator and the integration tests. `size` controls both array extent
/// and fingerprint (distinct sizes are distinct jobs); `reps` scales work.
pub fn sample_program(size: usize, reps: usize) -> String {
    let name = format!("load{size}x{reps}");
    let m = size - 1;
    let m1 = size - 2;
    format!(
        "program {name}\n\
         \x20 shared A({size},{size})\n\
         \x20 shared B({size},{size})\n\
         \x20 epoch init (serial):\n\
         \x20   do j0 = 0, {m}\n\
         \x20     do i0 = 0, {m}\n\
         \x20       A(i0,j0) = $i0*0.5 + $j0\n\
         \x20       B(i0,j0) = 1\n\
         \x20 repeat {reps} times:\n\
         \x20   epoch sweep (parallel):\n\
         \x20     doall(static) i = 1, {m1}\n\
         \x20       do j = 1, {m1}\n\
         \x20         A(i,j) = A(i,j-1)*0.25 + B(i,j)\n\
         \x20   epoch update (parallel):\n\
         \x20     doall(static) j = 1, {m1}\n\
         \x20       do i = 1, {m1}\n\
         \x20         B(i,j) = A(i,j)*0.5\n"
    )
}

#[cfg(test)]
mod unit {
    use super::*;

    fn spec(text: &str) -> JobSpec {
        JobSpec {
            program_text: text.to_string(),
            n_pes: 4,
            schemes: vec![Scheme::Base, Scheme::Ccdp],
            deadline_ms: 10_000,
        }
    }

    #[test]
    fn sample_program_runs_ok() {
        let r = run_job(&spec(&sample_program(12, 2)), &RetryPolicy::default());
        assert_eq!(r.status.0, 200, "{}", r.body.to_pretty());
        assert!(r.cacheable);
        assert_eq!(r.body.get("status").and_then(Json::as_str), Some("ok"));
        let ccdp = r.body.get("schemes").unwrap().get("ccdp").unwrap();
        assert!(ccdp.get("cycles").and_then(Json::as_u64).unwrap() > 0);
        assert!(r.body.get("improvement_pct").is_some());
    }

    #[test]
    fn responses_are_byte_deterministic() {
        let s = spec(&sample_program(10, 2));
        let a = run_job(&s, &RetryPolicy::default()).body.to_string();
        let b = run_job(&s, &RetryPolicy::default()).body.to_string();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_program_is_cacheable_structured_error() {
        let r = run_job(&spec("program broken\n  this is not IR\n"), &RetryPolicy::default());
        assert_eq!(r.status.0, 400);
        assert!(r.cacheable);
        assert_eq!(r.body.get("code").and_then(Json::as_str), Some("invalid_program"));
        assert!(r.body.get("fingerprint").is_some());
    }

    #[test]
    fn timeout_is_flaky_and_not_cacheable() {
        // A 1 ms deadline on a non-trivial program: the cooperative
        // watchdog fires. Retries happen (flaky class) but the final
        // verdict must be an uncacheable structured timeout.
        let mut s = spec(&sample_program(40, 60));
        s.deadline_ms = 1;
        let policy = RetryPolicy { max_attempts: 2, base_backoff: Duration::from_millis(1) };
        let r = run_job(&s, &policy);
        assert_eq!(r.body.get("code").and_then(Json::as_str), Some("timeout"));
        assert_eq!(r.status.0, 504);
        assert!(!r.cacheable);
        assert_eq!(r.retries, 1);
    }

    #[test]
    fn spec_json_roundtrip_preserves_fingerprint() {
        let s = spec(&sample_program(8, 1));
        let back = JobSpec::from_json(&s.to_json(), 999).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.fingerprint(), back.fingerprint());
    }

    #[test]
    fn fingerprint_covers_result_inputs_only() {
        let a = spec(&sample_program(8, 1));
        let mut b = a.clone();
        b.deadline_ms = 1234; // does not change the result → same key
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.n_pes = 8;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = a.clone();
        d.schemes = vec![Scheme::Ccdp, Scheme::Base];
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn from_json_validates() {
        let parse = |t: &str| JobSpec::from_json(&ccdp_json::parse(t).unwrap(), 5000);
        assert!(parse(r#"{"program": "p"}"#).is_ok());
        assert!(parse(r#"{}"#).is_err());
        assert!(parse(r#"{"program": "p", "n_pes": 1}"#).is_err());
        assert!(parse(r#"{"program": "p", "n_pes": 9999}"#).is_err());
        assert!(parse(r#"{"program": "p", "schemes": ["warp"]}"#).is_err());
        assert!(parse(r#"{"program": "p", "schemes": []}"#).is_err());
        assert!(parse(r#"{"program": "p", "deadline_ms": 0}"#).is_err());
        let s = parse(r#"{"program": "p", "schemes": ["mesi", "dragon"]}"#).unwrap();
        assert_eq!(s.schemes, vec![Scheme::Mesi, Scheme::Dragon]);
        assert_eq!(s.deadline_ms, 5000);
    }
}
