//! The one libc call this workspace needs: `signal(2)`.
//!
//! The workspace carries no FFI crates, so the declaration lives here,
//! shared by the supervisor (SIGTERM/SIGINT → graceful drain flag) and the
//! worker mode (ignore both: a signal aimed at the process group must not
//! bypass the supervisor-coordinated drain — workers exit on stdin EOF or
//! an explicit shutdown frame). Handlers are restricted to storing an
//! `AtomicBool` or `SIG_IGN`, both async-signal-safe.

#[cfg(unix)]
mod imp {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    pub const SIG_IGN: usize = 1;

    pub fn set_handler(sig: i32, handler: usize) {
        unsafe {
            signal(sig, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    pub const SIG_IGN: usize = 1;

    pub fn set_handler(_sig: i32, _handler: usize) {}
}

pub use imp::{set_handler, SIGINT, SIGTERM, SIG_IGN};

/// Make termination signals no-ops (worker mode).
pub fn ignore_termination_signals() {
    set_handler(SIGTERM, SIG_IGN);
    set_handler(SIGINT, SIG_IGN);
}
