//! The supervision tree: N isolated worker processes under one acceptor.
//!
//! The supervisor pre-forks workers by re-executing its own binary with
//! `--worker` (no fork(2) FFI, no new deps) and talks to each over its
//! stdin/stdout pipe pair using the framed protocol in [`crate::worker`].
//! The design invariant: **nothing a worker does can take down the
//! acceptor**. A worker panic-aborts, gets `kill -9`ed, OOMs, or wedges —
//! the supervisor detects it (pipe EOF, job deadline overrun, or heartbeat
//! silence), re-dispatches its in-flight jobs to surviving workers, and
//! respawns the slot with exponential backoff behind a restart-storm
//! circuit breaker.
//!
//! Re-dispatch protocol: every job is journaled (fsynced) to the target
//! slot's journal *before* the dispatch frame is written, so the
//! crash-window accounting is exact: a job is either unjournaled (client
//! still waiting, connection eventually resets — it re-submits) or
//! journaled (replayed on restart). In-process, the requester thread holds
//! a ticket; worker death fails the ticket and the requester re-acquires a
//! live worker — the job runs again and, because the pipeline is
//! deterministic, produces byte-identical response bytes. Lost-worker
//! jobs therefore cost latency, never correctness.
//!
//! Backoff/breaker logic is pure over an explicit `now: Instant` so unit
//! tests drive it without sleeping.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ccdp_json::{Json, ToJson};

use crate::api::{JobSpec, RetryPolicy};
use crate::journal::JobJournal;

// --- Restart policy: pure, clock-injected, unit-testable ----------------

/// Knobs governing worker respawn behaviour.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Backoff before respawn k (consecutive) is `base * 2^k`, capped.
    pub base_backoff: Duration,
    pub max_backoff: Duration,
    /// A worker alive this long resets its slot's consecutive-death count.
    pub stable_after: Duration,
    /// Fleet-wide circuit breaker: this many deaths...
    pub storm_threshold: usize,
    /// ...within this window opens the breaker...
    pub storm_window: Duration,
    /// ...which blocks every respawn for this long.
    pub cooloff: Duration,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(5),
            stable_after: Duration::from_secs(10),
            storm_threshold: 6,
            storm_window: Duration::from_secs(10),
            cooloff: Duration::from_secs(5),
        }
    }
}

/// Per-slot exponential backoff with stability reset.
#[derive(Debug)]
pub struct RestartTracker {
    policy: RestartPolicy,
    consecutive: u32,
    last_spawn: Option<Instant>,
}

impl RestartTracker {
    pub fn new(policy: RestartPolicy) -> RestartTracker {
        RestartTracker { policy, consecutive: 0, last_spawn: None }
    }

    pub fn on_spawn(&mut self, now: Instant) {
        self.last_spawn = Some(now);
    }

    /// Record a death; returns the backoff to wait before respawning.
    pub fn on_death(&mut self, now: Instant) -> Duration {
        if let Some(spawned) = self.last_spawn {
            if now.saturating_duration_since(spawned) >= self.policy.stable_after {
                self.consecutive = 0;
            }
        }
        let exp = self.consecutive.min(16);
        let backoff = self
            .policy
            .base_backoff
            .saturating_mul(2u32.saturating_pow(exp))
            .min(self.policy.max_backoff);
        self.consecutive += 1;
        backoff
    }

    pub fn consecutive_deaths(&self) -> u32 {
        self.consecutive
    }
}

/// Fleet-wide restart-storm circuit breaker: if the whole fleet is
/// crash-looping (e.g. a poisoned environment, not one bad job), pausing
/// all respawns beats burning CPU on a fork storm. While open the service
/// still accepts and sheds structurally (`/readyz` goes 503).
#[derive(Debug)]
pub struct FleetBreaker {
    policy: RestartPolicy,
    deaths: VecDeque<Instant>,
    open_until: Option<Instant>,
    /// Times the breaker has tripped (observability).
    pub trips: u64,
}

impl FleetBreaker {
    pub fn new(policy: RestartPolicy) -> FleetBreaker {
        FleetBreaker { policy, deaths: VecDeque::new(), open_until: None, trips: 0 }
    }

    pub fn on_death(&mut self, now: Instant) {
        self.deaths.push_back(now);
        while let Some(&front) = self.deaths.front() {
            if now.saturating_duration_since(front) > self.policy.storm_window {
                self.deaths.pop_front();
            } else {
                break;
            }
        }
        if self.deaths.len() >= self.policy.storm_threshold && !self.is_open(now) {
            self.open_until = Some(now + self.policy.cooloff);
            self.trips += 1;
            self.deaths.clear();
        }
    }

    pub fn is_open(&self, now: Instant) -> bool {
        self.open_until.is_some_and(|until| now < until)
    }
}

// --- The pool ------------------------------------------------------------

/// Pool tuning; `Default` matches interactive service expectations.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    pub workers: usize,
    pub restart: RestartPolicy,
    /// Idle workers are pinged at this cadence; silence for 3 heartbeats
    /// marks an idle worker unresponsive (busy workers are judged by their
    /// job deadline instead — they block in the pipeline and cannot pong).
    pub heartbeat: Duration,
    /// Grace past a job's worst-case (deadline × attempts) before a busy
    /// worker is declared hung and killed.
    pub hang_grace: Duration,
    /// A job orphaned by worker death is re-dispatched at most this many
    /// times before answering `worker_lost`.
    pub max_redispatch: u32,
    /// How long a request waits for an idle worker before `no_workers`.
    pub acquire_timeout: Duration,
    pub retry: RetryPolicy,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 2,
            restart: RestartPolicy::default(),
            heartbeat: Duration::from_millis(500),
            hang_grace: Duration::from_secs(2),
            max_redispatch: 3,
            acquire_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
        }
    }
}

/// Lock-free pool counters for `/stats` and the chaos report.
#[derive(Default)]
pub struct PoolStats {
    pub restarts: AtomicU64,
    pub redispatches: AtomicU64,
    pub orphan_replays: AtomicU64,
    pub breaker_trips: AtomicU64,
}

/// A completed job as reported by a worker.
pub struct Done {
    pub status: u16,
    pub cacheable: bool,
    pub retries: u32,
    pub response: Vec<u8>,
}

enum Reply {
    Done(Done),
    Died,
}

/// Why [`Pool::run`] could not produce a worker answer.
#[derive(Debug, PartialEq, Eq)]
pub enum RunError {
    /// No live idle worker within the acquire timeout (fleet down or
    /// breaker open).
    NoWorkers,
    /// The job's worker died `redispatches + 1` times in a row.
    WorkerLost { redispatches: u32 },
}

struct UpWorker {
    pid: u32,
    stdin: ChildStdin,
    child: Option<Child>,
    /// Deadline by which the current job must have answered (None = idle).
    busy_until: Option<Instant>,
    last_seen: Instant,
    last_ping: Instant,
}

enum SlotState {
    Up(UpWorker),
    Down { next_spawn: Instant },
}

struct Slot {
    gen: u64,
    state: SlotState,
}

struct Ticket {
    slot: usize,
    gen: u64,
    tx: Sender<Reply>,
}

struct PoolState {
    slots: Vec<Slot>,
    idle: VecDeque<usize>,
    pending: HashMap<u64, Ticket>,
    trackers: Vec<RestartTracker>,
    breaker: FleetBreaker,
    shutting_down: bool,
}

/// The worker-process pool. One per supervisor; shared across the
/// connection-handler threads.
pub struct Pool {
    cfg: PoolConfig,
    state: Mutex<PoolState>,
    idle_cv: Condvar,
    next_ticket: AtomicU64,
    monitor_stop: AtomicBool,
    /// Per-slot journals (same indexing as slots); empty = journaling off.
    journals: Vec<Arc<JobJournal>>,
    pub stats: PoolStats,
}

fn job_frame(id: u64, spec: &JobSpec, retry: &RetryPolicy) -> String {
    Json::obj([
        ("kind", "job".to_json()),
        ("id", id.to_json()),
        ("spec", spec.to_json()),
        (
            "retry",
            Json::obj([
                ("max_attempts", u64::from(retry.max_attempts).to_json()),
                ("backoff_ms", (retry.base_backoff.as_millis() as u64).to_json()),
            ]),
        ),
    ])
    .to_string()
}

impl Pool {
    /// Build the pool and spawn the initial fleet plus the monitor thread.
    /// `journals` must be empty (journaling disabled) or exactly
    /// `cfg.workers` long.
    pub fn start(cfg: PoolConfig, journals: Vec<Arc<JobJournal>>) -> std::io::Result<Arc<Pool>> {
        assert!(journals.is_empty() || journals.len() == cfg.workers);
        let workers = cfg.workers.max(1);
        let now = Instant::now();
        let state = PoolState {
            slots: (0..workers)
                .map(|_| Slot { gen: 0, state: SlotState::Down { next_spawn: now } })
                .collect(),
            idle: VecDeque::new(),
            pending: HashMap::new(),
            trackers: (0..workers).map(|_| RestartTracker::new(cfg.restart.clone())).collect(),
            breaker: FleetBreaker::new(cfg.restart.clone()),
            shutting_down: false,
        };
        let pool = Arc::new(Pool {
            cfg,
            state: Mutex::new(state),
            idle_cv: Condvar::new(),
            next_ticket: AtomicU64::new(1),
            monitor_stop: AtomicBool::new(false),
            journals,
            stats: PoolStats::default(),
        });
        for slot in 0..workers {
            pool.spawn_worker(slot)?;
        }
        let monitor = Arc::clone(&pool);
        std::thread::Builder::new()
            .name("ccdpd-monitor".into())
            .spawn(move || monitor.monitor_loop())?;
        Ok(pool)
    }

    pub fn workers_total(&self) -> usize {
        self.state.lock().expect("pool lock").slots.len()
    }

    pub fn workers_alive(&self) -> usize {
        let st = self.state.lock().expect("pool lock");
        st.slots.iter().filter(|s| matches!(s.state, SlotState::Up(_))).count()
    }

    /// Spawn (or respawn) the worker for `slot`. Prints the
    /// `ccdpd worker <slot> pid <pid>` line the chaos harness parses.
    fn spawn_worker(self: &Arc<Self>, slot: usize) -> std::io::Result<()> {
        let exe = std::env::current_exe()?;
        let mut child = Command::new(exe)
            .arg("--worker")
            .arg("--worker-slot")
            .arg(slot.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let pid = child.id();
        let gen;
        {
            let mut st = self.state.lock().expect("pool lock");
            let now = Instant::now();
            st.trackers[slot].on_spawn(now);
            let s = &mut st.slots[slot];
            s.gen += 1;
            gen = s.gen;
            s.state = SlotState::Up(UpWorker {
                pid,
                stdin,
                child: Some(child),
                busy_until: None,
                last_seen: now,
                last_ping: now,
            });
            st.idle.push_back(slot);
        }
        self.idle_cv.notify_one();
        println!("ccdpd worker {slot} pid {pid}");
        let _ = std::io::stdout().flush();
        let reader = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("ccdpd-reader-{slot}"))
            .spawn(move || reader.reader_loop(slot, gen, stdout))?;
        Ok(())
    }

    /// Per-worker reader: routes frames until pipe EOF, then performs the
    /// death transition. EOF is the single source of truth for "worker
    /// gone" — kills (ours or anyone's) funnel through it.
    fn reader_loop(self: &Arc<Self>, slot: usize, gen: u64, stdout: std::process::ChildStdout) {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            let Ok(doc) = ccdp_json::parse(&line) else { continue };
            match doc.get("kind").and_then(Json::as_str) {
                Some("done") => self.on_done(slot, gen, &doc),
                Some("ready") | Some("pong") => self.touch(slot, gen),
                _ => {}
            }
        }
        self.on_worker_exit(slot, gen);
    }

    fn touch(&self, slot: usize, gen: u64) {
        let mut st = self.state.lock().expect("pool lock");
        if st.slots[slot].gen != gen {
            return;
        }
        if let SlotState::Up(w) = &mut st.slots[slot].state {
            w.last_seen = Instant::now();
        }
    }

    fn on_done(&self, slot: usize, gen: u64, doc: &Json) {
        let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
        let done = Done {
            status: doc.get("status").and_then(Json::as_u64).unwrap_or(500) as u16,
            cacheable: doc.get("cacheable").and_then(Json::as_bool).unwrap_or(false),
            retries: doc.get("retries").and_then(Json::as_u64).unwrap_or(0) as u32,
            response: doc
                .get("response")
                .and_then(Json::as_str)
                .unwrap_or("")
                .as_bytes()
                .to_vec(),
        };
        let ticket;
        {
            let mut st = self.state.lock().expect("pool lock");
            if st.slots[slot].gen != gen {
                return;
            }
            if let SlotState::Up(w) = &mut st.slots[slot].state {
                w.busy_until = None;
                w.last_seen = Instant::now();
            }
            if !st.idle.contains(&slot) {
                st.idle.push_back(slot);
            }
            ticket = st.pending.remove(&id);
        }
        self.idle_cv.notify_one();
        if let Some(t) = ticket {
            let _ = t.tx.send(Reply::Done(done));
        }
        // No ticket: the requester timed out and walked away; the result
        // is dropped (its journal `done` line never written — the job
        // stays incomplete and replays on resume, which is correct).
    }

    fn on_worker_exit(self: &Arc<Self>, slot: usize, gen: u64) {
        let mut dead_child = None;
        let mut orphans = Vec::new();
        {
            let mut st = self.state.lock().expect("pool lock");
            if st.slots[slot].gen != gen {
                return;
            }
            let now = Instant::now();
            let backoff = st.trackers[slot].on_death(now);
            if !st.shutting_down {
                st.breaker.on_death(now);
                self.stats.breaker_trips.store(st.breaker.trips, Ordering::Relaxed);
            }
            if let SlotState::Up(w) = &mut st.slots[slot].state {
                dead_child = w.child.take();
            }
            st.slots[slot].state = SlotState::Down { next_spawn: now + backoff };
            st.idle.retain(|&s| s != slot);
            let ids: Vec<u64> = st
                .pending
                .iter()
                .filter(|(_, t)| t.slot == slot && t.gen == gen)
                .map(|(&id, _)| id)
                .collect();
            for id in ids {
                if let Some(t) = st.pending.remove(&id) {
                    orphans.push(t);
                }
            }
            if !st.shutting_down {
                eprintln!(
                    "ccdpd: worker {slot} (gen {gen}) exited; {} in-flight job(s) orphaned",
                    orphans.len()
                );
            }
        }
        if let Some(mut child) = dead_child {
            let _ = child.wait(); // reap; already exited (stdout EOF)
        }
        for t in orphans {
            let _ = t.tx.send(Reply::Died);
        }
    }

    /// Kill a specific worker generation (hung or unresponsive). The
    /// reader's EOF does the bookkeeping.
    fn kill_worker(&self, slot: usize, gen: u64, why: &str) {
        let mut st = self.state.lock().expect("pool lock");
        if st.slots[slot].gen != gen {
            return;
        }
        if let SlotState::Up(w) = &mut st.slots[slot].state {
            eprintln!("ccdpd: killing worker {slot} pid {} ({why})", w.pid);
            if let Some(child) = &mut w.child {
                let _ = child.kill();
            }
        }
    }

    /// Wait for an idle live worker; marks it busy until `busy_for` from
    /// now. Returns the `(slot, generation)` lease.
    fn acquire_idle(&self, wait: Duration, busy_for: Duration) -> Option<(usize, u64)> {
        let deadline = Instant::now() + wait;
        let mut st = self.state.lock().expect("pool lock");
        loop {
            while let Some(slot) = st.idle.pop_front() {
                let gen = st.slots[slot].gen;
                if let SlotState::Up(w) = &mut st.slots[slot].state {
                    w.busy_until = Some(Instant::now() + busy_for);
                    return Some((slot, gen));
                }
            }
            if st.shutting_down {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timeout) = self
                .idle_cv
                .wait_timeout(st, deadline.saturating_duration_since(now))
                .expect("pool lock");
            st = guard;
        }
    }

    /// Worst-case time a worker may legitimately hold a job: every retry
    /// attempt burning the full deadline, plus scheduling slack.
    fn busy_budget(&self, spec: &JobSpec) -> Duration {
        Duration::from_millis(
            spec.deadline_ms * u64::from(self.cfg.retry.max_attempts.max(1)) + 5_000,
        )
    }

    /// Run one job on the fleet: journal → dispatch → await, re-dispatching
    /// on worker death. This is the supervisor half of the byte-identical
    /// guarantee: the same spec always produces the same response bytes,
    /// no matter how many workers died along the way.
    pub fn run(&self, fp: &str, spec: &JobSpec) -> Result<Done, RunError> {
        let busy_for = self.busy_budget(spec);
        let mut redispatches = 0u32;
        loop {
            let Some((slot, gen)) = self.acquire_idle(self.cfg.acquire_timeout, busy_for)
            else {
                return Err(RunError::NoWorkers);
            };
            if let Some(j) = self.journals.get(slot) {
                if let Err(e) = j.record_job(fp, spec) {
                    // Degrade, don't die: the job runs without crash cover.
                    eprintln!("ccdpd: journal write failed: {e}");
                }
            }
            let id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = channel();
            let frame = job_frame(id, spec, &self.cfg.retry);
            let sent = {
                let mut st = self.state.lock().expect("pool lock");
                if st.slots[slot].gen != gen {
                    false
                } else {
                    st.pending.insert(id, Ticket { slot, gen, tx });
                    let ok = if let SlotState::Up(w) = &mut st.slots[slot].state {
                        writeln!(w.stdin, "{frame}").and_then(|()| w.stdin.flush()).is_ok()
                    } else {
                        false
                    };
                    if !ok {
                        st.pending.remove(&id);
                    }
                    ok
                }
            };
            if !sent {
                // Worker died between acquire and write; its EOF transition
                // is in flight. Count and retry like any other death.
                redispatches += 1;
                self.stats.redispatches.fetch_add(1, Ordering::Relaxed);
                if redispatches > self.cfg.max_redispatch {
                    return Err(RunError::WorkerLost { redispatches: redispatches - 1 });
                }
                continue;
            }
            match rx.recv_timeout(busy_for) {
                Ok(Reply::Done(done)) => {
                    if done.cacheable {
                        if let Some(j) = self.journals.get(slot) {
                            if let Err(e) = j.record_done(fp, &done.response) {
                                eprintln!("ccdpd: journal write failed: {e}");
                            }
                        }
                    }
                    return Ok(done);
                }
                Ok(Reply::Died) | Err(RecvTimeoutError::Disconnected) => {
                    redispatches += 1;
                    self.stats.redispatches.fetch_add(1, Ordering::Relaxed);
                    if redispatches > self.cfg.max_redispatch {
                        return Err(RunError::WorkerLost { redispatches: redispatches - 1 });
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    // The worker out-slept its worst case: hung. Kill it;
                    // the EOF transition will also fail any other tickets.
                    self.state.lock().expect("pool lock").pending.remove(&id);
                    self.kill_worker(slot, gen, "job deadline overrun");
                    redispatches += 1;
                    self.stats.redispatches.fetch_add(1, Ordering::Relaxed);
                    if redispatches > self.cfg.max_redispatch {
                        return Err(RunError::WorkerLost { redispatches: redispatches - 1 });
                    }
                }
            }
        }
    }

    /// Health/respawn loop: pings idle workers, kills hung or silent ones,
    /// respawns due slots (unless the breaker is open).
    fn monitor_loop(self: Arc<Self>) {
        while !self.monitor_stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
            let now = Instant::now();
            let mut to_kill: Vec<(usize, u64, &'static str)> = Vec::new();
            let mut to_spawn: Vec<usize> = Vec::new();
            {
                let mut st = self.state.lock().expect("pool lock");
                if st.shutting_down {
                    break;
                }
                let breaker_open = st.breaker.is_open(now);
                for (slot, s) in st.slots.iter_mut().enumerate() {
                    let gen = s.gen;
                    match &mut s.state {
                        SlotState::Up(w) => match w.busy_until {
                            Some(deadline) => {
                                if now > deadline + self.cfg.hang_grace {
                                    to_kill.push((slot, gen, "hung mid-job"));
                                }
                            }
                            None => {
                                if now.saturating_duration_since(w.last_seen)
                                    > self.cfg.heartbeat * 3
                                {
                                    to_kill.push((slot, gen, "heartbeat silence"));
                                } else if now.saturating_duration_since(w.last_ping)
                                    >= self.cfg.heartbeat
                                {
                                    w.last_ping = now;
                                    let ping = Json::obj([
                                        ("kind", "ping".to_json()),
                                        ("id", 0u64.to_json()),
                                    ])
                                    .to_string();
                                    if writeln!(w.stdin, "{ping}")
                                        .and_then(|()| w.stdin.flush())
                                        .is_err()
                                    {
                                        to_kill.push((slot, gen, "dead pipe"));
                                    }
                                }
                            }
                        },
                        SlotState::Down { next_spawn } => {
                            if now >= *next_spawn && !breaker_open {
                                to_spawn.push(slot);
                            }
                        }
                    }
                }
            }
            for (slot, gen, why) in to_kill {
                self.kill_worker(slot, gen, why);
            }
            for slot in to_spawn {
                match self.spawn_worker(slot) {
                    Ok(()) => {
                        self.stats.restarts.fetch_add(1, Ordering::Relaxed);
                        eprintln!("ccdpd: worker {slot} respawned");
                    }
                    Err(e) => eprintln!("ccdpd: respawn of worker {slot} failed: {e}"),
                }
            }
        }
    }

    /// Graceful drain: stop respawns, ask every worker to exit, wait
    /// briefly, then kill stragglers and reap everything.
    pub fn shutdown(&self) {
        self.monitor_stop.store(true, Ordering::SeqCst);
        {
            let mut st = self.state.lock().expect("pool lock");
            st.shutting_down = true;
            for s in st.slots.iter_mut() {
                if let SlotState::Up(w) = &mut s.state {
                    let bye = Json::obj([("kind", "shutdown".to_json())]).to_string();
                    let _ = writeln!(w.stdin, "{bye}").and_then(|()| w.stdin.flush());
                }
            }
        }
        self.idle_cv.notify_all();
        let deadline = Instant::now() + Duration::from_secs(3);
        loop {
            let alive = self.workers_alive();
            if alive == 0 {
                break;
            }
            if Instant::now() >= deadline {
                let mut st = self.state.lock().expect("pool lock");
                for s in st.slots.iter_mut() {
                    if let SlotState::Up(w) = &mut s.state {
                        if let Some(child) = &mut w.child {
                            let _ = child.kill();
                        }
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        // Readers reap on EOF; give the last transitions a moment.
        let settle = Instant::now() + Duration::from_millis(500);
        while self.workers_alive() > 0 && Instant::now() < settle {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn policy() -> RestartPolicy {
        RestartPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(2),
            stable_after: Duration::from_secs(10),
            storm_threshold: 4,
            storm_window: Duration::from_secs(5),
            cooloff: Duration::from_secs(3),
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut t = RestartTracker::new(policy());
        let t0 = Instant::now();
        t.on_spawn(t0);
        assert_eq!(t.on_death(t0 + Duration::from_millis(10)), Duration::from_millis(100));
        assert_eq!(t.on_death(t0 + Duration::from_millis(20)), Duration::from_millis(200));
        assert_eq!(t.on_death(t0 + Duration::from_millis(30)), Duration::from_millis(400));
        assert_eq!(t.on_death(t0 + Duration::from_millis(40)), Duration::from_millis(800));
        assert_eq!(t.on_death(t0 + Duration::from_millis(50)), Duration::from_millis(1600));
        // Capped at max_backoff from here on.
        assert_eq!(t.on_death(t0 + Duration::from_millis(60)), Duration::from_secs(2));
        assert_eq!(t.on_death(t0 + Duration::from_millis(70)), Duration::from_secs(2));
    }

    #[test]
    fn stable_run_resets_backoff() {
        let mut t = RestartTracker::new(policy());
        let t0 = Instant::now();
        t.on_spawn(t0);
        t.on_death(t0 + Duration::from_millis(10));
        t.on_death(t0 + Duration::from_millis(20));
        assert_eq!(t.consecutive_deaths(), 2);
        // Respawn that then survives past stable_after.
        let t1 = t0 + Duration::from_secs(60);
        t.on_spawn(t1);
        let after_stable = t1 + Duration::from_secs(11);
        assert_eq!(t.on_death(after_stable), Duration::from_millis(100));
        assert_eq!(t.consecutive_deaths(), 1);
    }

    #[test]
    fn breaker_opens_on_storm_and_cools_off() {
        let mut b = FleetBreaker::new(policy());
        let t0 = Instant::now();
        for i in 0..3 {
            b.on_death(t0 + Duration::from_millis(i * 100));
            assert!(!b.is_open(t0 + Duration::from_millis(i * 100)), "not yet a storm");
        }
        // Fourth death inside the 5 s window: storm.
        let trip = t0 + Duration::from_millis(300);
        b.on_death(trip);
        assert!(b.is_open(trip));
        assert_eq!(b.trips, 1);
        assert!(b.is_open(trip + Duration::from_millis(2_900)));
        assert!(!b.is_open(trip + Duration::from_secs(3)), "cooloff elapsed");
    }

    #[test]
    fn slow_deaths_never_trip_breaker() {
        let mut b = FleetBreaker::new(policy());
        let t0 = Instant::now();
        // One death every 6 s: each falls out of the 5 s window before the
        // next arrives.
        for i in 0..20u64 {
            let now = t0 + Duration::from_secs(6 * i);
            b.on_death(now);
            assert!(!b.is_open(now), "death #{i} must not trip the breaker");
        }
        assert_eq!(b.trips, 0);
    }

    #[test]
    fn breaker_retrips_after_cooloff() {
        let mut b = FleetBreaker::new(policy());
        let t0 = Instant::now();
        for i in 0..4u64 {
            b.on_death(t0 + Duration::from_millis(i * 10));
        }
        assert_eq!(b.trips, 1);
        // A second storm after the first cooloff trips it again.
        let t1 = t0 + Duration::from_secs(10);
        for i in 0..4u64 {
            b.on_death(t1 + Duration::from_millis(i * 10));
        }
        assert_eq!(b.trips, 2);
        assert!(b.is_open(t1 + Duration::from_millis(40)));
    }
}
