//! Minimal HTTP/1.1 request/response handling over any `Read`/`Write`.
//!
//! The service speaks one-request-per-connection HTTP (every response
//! carries `Connection: close`), which keeps the state machine trivial:
//! read one head, read one body, write one response. The parser is the
//! part of the server directly exposed to untrusted bytes, so it is pure
//! over `Read` (fuzzable with in-memory cursors — see
//! `tests/serve_http_fuzz.rs`) and every malformed input maps to a
//! structured [`HttpError`] carrying its own status code. It must never
//! panic.

use std::io::{Read, Write};

/// Cap on the request head (request line + headers). Anything a client of
/// this service legitimately sends fits in a fraction of this.
pub const MAX_HEAD: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (first match).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Everything that can go wrong reading a request. Each variant knows its
/// HTTP status, so the server can answer malformed traffic structurally
/// instead of dropping the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Transport error mid-read (includes timeouts).
    Io(std::io::ErrorKind),
    /// Stream ended before the head or the promised body was complete.
    Truncated,
    /// Head exceeded [`MAX_HEAD`] without terminating.
    HeadTooLarge { limit: usize },
    /// First line is not `METHOD SP PATH SP HTTP/1.x`.
    BadRequestLine(String),
    /// A header line has no colon, an empty name, or embedded controls.
    BadHeader(String),
    /// `Content-Length` present but not a decimal integer.
    BadContentLength(String),
    /// Body-carrying method without a `Content-Length`.
    LengthRequired,
    /// Declared body larger than the server's limit.
    BodyTooLarge { length: usize, limit: usize },
    /// The client fed bytes too slowly: the per-connection deadline
    /// elapsed (or a socket read timed out) before the request completed.
    /// A dribbling client must cost one structured 408, never a
    /// wedged acceptor slot.
    Timeout { deadline_ms: u64 },
}

impl HttpError {
    /// `(status, reason)` for the error response.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Io(_) | HttpError::Truncated => (400, "Bad Request"),
            HttpError::HeadTooLarge { .. } => (431, "Request Header Fields Too Large"),
            HttpError::BadRequestLine(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_) => (400, "Bad Request"),
            HttpError::LengthRequired => (411, "Length Required"),
            HttpError::BodyTooLarge { .. } => (413, "Payload Too Large"),
            HttpError::Timeout { .. } => (408, "Request Timeout"),
        }
    }

    /// Stable machine-readable code for the JSON error envelope.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::Io(_) => "io",
            HttpError::Truncated => "truncated",
            HttpError::HeadTooLarge { .. } => "head_too_large",
            HttpError::BadRequestLine(_) => "bad_request_line",
            HttpError::BadHeader(_) => "bad_header",
            HttpError::BadContentLength(_) => "bad_content_length",
            HttpError::LengthRequired => "length_required",
            HttpError::BodyTooLarge { .. } => "body_too_large",
            HttpError::Timeout { .. } => "request_timeout",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(k) => write!(f, "transport error: {k:?}"),
            HttpError::Truncated => write!(f, "request truncated before completion"),
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::BadRequestLine(l) => write!(f, "malformed request line {l:?}"),
            HttpError::BadHeader(l) => write!(f, "malformed header line {l:?}"),
            HttpError::BadContentLength(v) => {
                write!(f, "unparseable Content-Length {v:?}")
            }
            HttpError::LengthRequired => write!(f, "Content-Length required"),
            HttpError::BodyTooLarge { length, limit } => {
                write!(f, "declared body of {length} bytes exceeds limit {limit}")
            }
            HttpError::Timeout { deadline_ms } => {
                write!(f, "request not completed within {deadline_ms} ms")
            }
        }
    }
}

/// Read and parse one request. `max_body` bounds the declared
/// `Content-Length`; the head is bounded by [`MAX_HEAD`]. Never reads past
/// the declared body, never panics on any input bytes.
pub fn read_request(r: &mut impl Read, max_body: usize) -> Result<Request, HttpError> {
    read_request_deadline(r, max_body, &Deadline::none())
}

/// Wall-clock budget for reading one request. Combined with a short socket
/// read timeout this defeats the dribble-byte attack: each socket read
/// returns (bytes or `WouldBlock`/`TimedOut`) within the socket timeout,
/// and the deadline is re-checked between reads, so a client feeding one
/// byte per second can hold a handler for at most `deadline_ms`, not
/// forever.
#[derive(Debug, Clone)]
pub struct Deadline {
    at: Option<std::time::Instant>,
    pub deadline_ms: u64,
}

impl Deadline {
    pub fn after_ms(ms: u64) -> Deadline {
        Deadline {
            at: Some(std::time::Instant::now() + std::time::Duration::from_millis(ms)),
            deadline_ms: ms,
        }
    }

    pub fn none() -> Deadline {
        Deadline { at: None, deadline_ms: 0 }
    }

    fn expired(&self) -> bool {
        self.at.is_some_and(|at| std::time::Instant::now() >= at)
    }

    fn timeout(&self) -> HttpError {
        HttpError::Timeout { deadline_ms: self.deadline_ms }
    }
}

/// [`read_request`] with a wall-clock deadline. `WouldBlock`/`TimedOut`
/// socket errors count as "still waiting" and retry until the deadline —
/// without a deadline they stay transport errors.
pub fn read_request_deadline(
    r: &mut impl Read,
    max_body: usize,
    deadline: &Deadline,
) -> Result<Request, HttpError> {
    let read_some = |r: &mut dyn Read, chunk: &mut [u8]| -> Result<usize, HttpError> {
        loop {
            if deadline.expired() {
                return Err(deadline.timeout());
            }
            match r.read(chunk) {
                Ok(n) => return Ok(n),
                Err(e)
                    if deadline.at.is_some()
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) => {}
                Err(e) => return Err(HttpError::Io(e.kind())),
            }
        }
    };

    // Accumulate the head until the blank line. Single-byte reads would be
    // slow; chunked reads could swallow body bytes, which is fine here
    // (whatever follows the head stays in `buf` and seeds the body).
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::HeadTooLarge { limit: MAX_HEAD });
        }
        let n = read_some(r, &mut chunk)?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadHeader("<non-utf8 head>".into()))?
        .to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, path) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or_else(|| HttpError::BadHeader(line.to_string()))?;
        let name = name.trim();
        if name.is_empty() || name.contains(' ') || name.chars().any(|c| c.is_control()) {
            return Err(HttpError::BadHeader(line.to_string()));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse::<usize>().map_err(|_| HttpError::BadContentLength(v.clone())))
        .transpose()?;

    let length = match content_length {
        Some(n) => n,
        None if method == "POST" || method == "PUT" => return Err(HttpError::LengthRequired),
        None => 0,
    };
    if length > max_body {
        return Err(HttpError::BodyTooLarge { length, limit: max_body });
    }

    // Body: leftover bytes from the head read, then exact reads.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > length {
        body.truncate(length); // trailing pipelined bytes are ignored
    }
    while body.len() < length {
        let want = (length - body.len()).min(chunk.len());
        let n = read_some(r, &mut chunk[..want])?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        body.extend_from_slice(&chunk[..n]);
    }

    Ok(Request { method, path, headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<(String, String), HttpError> {
    let bad = || HttpError::BadRequestLine(line.to_string());
    let mut parts = line.split(' ');
    let method = parts.next().ok_or_else(bad)?;
    let path = parts.next().ok_or_else(bad)?;
    let version = parts.next().ok_or_else(bad)?;
    if parts.next().is_some()
        || method.is_empty()
        || !method.chars().all(|c| c.is_ascii_uppercase())
        || !path.starts_with('/')
        || !(version == "HTTP/1.1" || version == "HTTP/1.0")
    {
        return Err(bad());
    }
    Ok((method.to_string(), path.to_string()))
}

/// Serialize a complete response (status line, JSON content type,
/// `Connection: close`, body). The service caches and journals these bytes
/// verbatim, so two calls with equal inputs are byte-identical.
pub fn response_bytes(status: u16, reason: &str, body: &str) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Best-effort write of a response; the peer may already be gone, which is
/// its problem, not the server's.
pub fn write_response(w: &mut impl Write, bytes: &[u8]) {
    let _ = w.write_all(bytes);
    let _ = w.flush();
}

#[cfg(test)]
mod unit {
    use super::*;
    use std::io::Cursor;

    fn req(text: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(text.as_bytes().to_vec()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let r = req("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/jobs");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn get_without_length_has_empty_body() {
        let r = req("GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
    }

    #[test]
    fn structured_errors() {
        assert_eq!(req("POST /jobs HTTP/1.1\r\n\r\n"), Err(HttpError::LengthRequired));
        assert_eq!(
            req("POST /jobs HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::BodyTooLarge { length: 9999, limit: 1024 })
        );
        assert_eq!(
            req("POST /jobs HTTP/1.1\r\nContent-Length: 5\r\n\r\nhi"),
            Err(HttpError::Truncated)
        );
        assert!(matches!(req("FLOOP\r\n\r\n"), Err(HttpError::BadRequestLine(_))));
        assert!(matches!(
            req("GET / HTTP/1.1\r\nnocolonhere\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
        assert!(matches!(
            req("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::BadContentLength(_))
        ));
    }

    /// Feeds one byte per read with a pause, then stalls with `WouldBlock`
    /// forever — the shape of a slow-loris client on a nonblocking socket.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        pause: std::time::Duration,
    }

    impl Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            std::thread::sleep(self.pause);
            if self.pos >= self.data.len() {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn dribbled_request_completes_within_deadline() {
        let mut r = Dribble {
            data: b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(),
            pos: 0,
            pause: std::time::Duration::from_millis(1),
        };
        let req = read_request_deadline(&mut r, 1024, &Deadline::after_ms(5_000)).unwrap();
        assert_eq!(req.path, "/healthz");
    }

    #[test]
    fn stalled_partial_head_times_out() {
        // Head never completes: the client sent half a request line and
        // went silent.
        let mut r = Dribble {
            data: b"POST /jo".to_vec(),
            pos: 0,
            pause: std::time::Duration::from_millis(1),
        };
        let err = read_request_deadline(&mut r, 1024, &Deadline::after_ms(40)).unwrap_err();
        assert_eq!(err, HttpError::Timeout { deadline_ms: 40 });
        assert_eq!(err.status(), (408, "Request Timeout"));
        assert_eq!(err.code(), "request_timeout");
    }

    #[test]
    fn stalled_partial_body_times_out() {
        let mut r = Dribble {
            data: b"POST /jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-this".to_vec(),
            pos: 0,
            pause: std::time::Duration::from_millis(1),
        };
        let err = read_request_deadline(&mut r, 1024, &Deadline::after_ms(40)).unwrap_err();
        assert_eq!(err, HttpError::Timeout { deadline_ms: 40 });
    }

    #[test]
    fn without_deadline_wouldblock_stays_io_error() {
        let mut r = Dribble {
            data: Vec::new(),
            pos: 0,
            pause: std::time::Duration::from_millis(1),
        };
        assert_eq!(
            read_request(&mut r, 1024),
            Err(HttpError::Io(std::io::ErrorKind::WouldBlock))
        );
    }

    #[test]
    fn response_bytes_are_deterministic() {
        let a = response_bytes(200, "OK", "{\"x\":1}");
        let b = response_bytes(200, "OK", "{\"x\":1}");
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 7\r\n"));
        assert!(text.ends_with("{\"x\":1}"));
    }
}
