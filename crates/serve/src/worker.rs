//! Worker mode: the isolated compute process.
//!
//! `ccdpd --worker` runs this loop instead of the server. The supervisor
//! owns the listener; a worker owns nothing but its stdin/stdout pipe pair
//! and the pipeline. The framed protocol is newline-delimited JSON, one
//! object per line:
//!
//! * supervisor → worker: `{"kind":"job","id":…,"spec":{…},"retry":{…}}`,
//!   `{"kind":"ping","id":…}`, `{"kind":"shutdown"}`;
//! * worker → supervisor: `{"kind":"ready"}` once at startup,
//!   `{"kind":"done","id":…,"status":…,"cacheable":…,"retries":…,
//!   "response":"…"}` per job (the `response` is the complete serialized
//!   HTTP bytes — the supervisor journals and caches them verbatim, which
//!   is what keeps crash replay byte-identical), `{"kind":"pong","id":…}`.
//!
//! Exit discipline: a worker ignores SIGTERM/SIGINT (drain is coordinated
//! by the supervisor, not by signal fan-out) and exits 0 on stdin EOF or a
//! shutdown frame. Stdin EOF is how a worker learns its supervisor died —
//! even `kill -9` of the supervisor closes the pipe — so a supervisor
//! crash never leaves orphan compute processes. A write failure (broken
//! pipe) means the same thing.

use std::io::{BufRead, Write};
use std::time::Duration;

use ccdp_json::{Json, ToJson};

use crate::api::{run_job, JobSpec, RetryPolicy};
use crate::http;
use crate::signals;

fn frame(out: &mut impl Write, doc: &Json) -> std::io::Result<()> {
    writeln!(out, "{}", doc.to_string())?;
    out.flush()
}

fn retry_from(doc: &Json) -> RetryPolicy {
    let d = RetryPolicy::default();
    let node = doc.get("retry");
    let max_attempts = node
        .and_then(|r| r.get("max_attempts"))
        .and_then(Json::as_u64)
        .map_or(d.max_attempts, |n| n as u32);
    let base_backoff = node
        .and_then(|r| r.get("backoff_ms"))
        .and_then(Json::as_u64)
        .map_or(d.base_backoff, Duration::from_millis);
    RetryPolicy { max_attempts: max_attempts.max(1), base_backoff }
}

/// The worker main loop. Returns only on shutdown frame, stdin EOF, or a
/// dead pipe — all of which mean "exit 0 now".
pub fn run_worker(slot: usize) -> std::io::Result<()> {
    signals::ignore_termination_signals();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if frame(&mut out, &Json::obj([("kind", "ready".to_json()), ("slot", slot.to_json())]))
        .is_err()
    {
        return Ok(());
    }
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let Ok(doc) = ccdp_json::parse(&line) else {
            eprintln!("ccdpd worker {slot}: unparseable frame; ignored");
            continue;
        };
        let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
        let reply = match doc.get("kind").and_then(Json::as_str) {
            Some("shutdown") => break,
            Some("ping") => Json::obj([("kind", "pong".to_json()), ("id", id.to_json())]),
            Some("job") => handle_job(id, &doc),
            other => {
                eprintln!("ccdpd worker {slot}: unknown frame kind {other:?}; ignored");
                continue;
            }
        };
        if frame(&mut out, &reply).is_err() {
            break; // supervisor gone
        }
    }
    Ok(())
}

fn handle_job(id: u64, doc: &Json) -> Json {
    let retry = retry_from(doc);
    let (status, cacheable, retries, bytes) = match doc
        .get("spec")
        .ok_or_else(|| "frame missing \"spec\"".to_string())
        .and_then(|s| JobSpec::from_json(s, 5000))
    {
        Ok(spec) => {
            let res = run_job(&spec, &retry);
            let bytes =
                http::response_bytes(res.status.0, res.status.1, &res.body.to_string());
            (res.status.0, res.cacheable, res.retries, bytes)
        }
        // A malformed spec can only mean a supervisor bug (specs are
        // validated at the HTTP boundary); answer structurally anyway.
        Err(msg) => {
            let body = crate::api::error_body("bad_frame", &msg, vec![]);
            (500, false, 0, http::response_bytes(500, "Internal Server Error", &body.to_string()))
        }
    };
    let text = String::from_utf8_lossy(&bytes).into_owned();
    Json::obj([
        ("kind", "done".to_json()),
        ("id", id.to_json()),
        ("status", u64::from(status).to_json()),
        ("cacheable", cacheable.to_json()),
        ("retries", u64::from(retries).to_json()),
        ("response", text.to_json()),
    ])
}
