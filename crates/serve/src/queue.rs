//! Bounded MPMC job queue with explicit admission control.
//!
//! The acceptor pushes accepted connections, workers pop them. `try_push`
//! never blocks: when the queue is at capacity the caller gets the item
//! back and sheds it with a structured `queue_full` response — bounded
//! queue depth is the service's overload contract, not an internal detail.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// At capacity: shed the work.
    Full,
    /// Draining: no new work is admitted.
    Closed,
}

struct State<T> {
    q: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity FIFO; `pop` blocks, `try_push` does not.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State { q: VecDeque::with_capacity(cap), closed: false }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Admit `t` unless full or closed; on refusal the item comes back to
    /// the caller (a connection still needs its shed response written).
    /// Returns the depth *after* the push.
    pub fn try_push(&self, t: T) -> Result<usize, (T, PushError)> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err((t, PushError::Closed));
        }
        if s.q.len() >= self.cap {
            return Err((t, PushError::Full));
        }
        s.q.push_back(t);
        let depth = s.q.len();
        drop(s);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained (`None` — the worker's signal to exit).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(t) = s.q.pop_front() {
                return Some(t);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).unwrap();
        }
    }

    /// Stop admitting; wake every blocked `pop` so workers can drain the
    /// backlog and exit.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    pub fn depth(&self) -> usize {
        self.state.lock().unwrap().q.len()
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_drains_then_releases_workers() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err((8, PushError::Closed)));
        // Backlog is still served after close; only then do pops end.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }
}
