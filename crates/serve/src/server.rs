//! The ccdpd supervisor: accept loop, admission control, single-flight
//! caching, journal replay, and the worker-process fleet.
//!
//! Life of a request:
//!
//! 1. The acceptor accepts the connection. If the bounded queue is full,
//!    the request is read and answered `429 {"code":"queue_full"}` right
//!    there — shedding is a structured response, never a dropped
//!    connection — and the queue depth never exceeds its bound.
//! 2. A handler thread pops the connection and reads the request under the
//!    slow-client deadline (every parse error is a structured 4xx, a
//!    dribbling client a structured 408), then dispatches: `/healthz`,
//!    `/readyz`, `/stats`, `/result/<fp>`, or `POST /jobs`.
//! 3. A job claims its fingerprint in the cache: a hit answers with the
//!    original response bytes; a join waits for the in-flight leader; the
//!    leader hands the job to the worker-process pool
//!    ([`crate::supervisor`]), which journals it to the target slot's
//!    journal, dispatches over the pipe, and re-dispatches on worker
//!    death. The returned bytes are journaled, published, and sent.
//! 4. SIGTERM/SIGINT flips a flag: the acceptor stops admitting, handlers
//!    drain the backlog, the pool shuts its workers down, and the process
//!    exits 0.
//!
//! The compute fleet lives in separate processes: a worker panic-abort,
//! `kill -9`, or OOM costs a re-dispatch, never the listener.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ccdp_core::Fingerprint;
use ccdp_json::{Json, ToJson};

use crate::api::{error_body, JobSpec, RetryPolicy};
use crate::cache::{Claim, PlanCache};
use crate::http;
use crate::journal;
use crate::queue::{Bounded, PushError};
use crate::signals;
use crate::supervisor::{Pool, PoolConfig, RestartPolicy, RunError};

/// Tuning knobs; `Default` is sized for a local instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the chosen address is
    /// printed to stdout as `ccdpd listening on <addr>`).
    pub addr: String,
    /// Worker *processes* (the compute fleet).
    pub workers: usize,
    /// Connection-handler threads in the supervisor (I/O only — parsing,
    /// cache lookups, waiting on workers — so a small number serves many
    /// workers).
    pub threads: usize,
    /// Admission-control bound: connections queued beyond the handlers.
    pub queue_cap: usize,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Deadline for jobs that do not set `deadline_ms` themselves.
    pub default_deadline_ms: u64,
    /// Slow-client guard: a connection must deliver its complete request
    /// within this budget or be answered `408 request_timeout`.
    pub read_deadline_ms: u64,
    pub cache_cap: usize,
    pub retry: RetryPolicy,
    /// Shared journal directory (one `worker-<slot>.jsonl` per worker);
    /// `None` disables journaling (still crash-safe for clients — they
    /// just see a dropped connection and re-submit).
    pub journal_dir: Option<PathBuf>,
    /// Resume from the existing journal directory instead of starting
    /// fresh.
    pub resume: bool,
    /// Per-slot journal compaction threshold (bytes); 0 disables.
    pub compact_bytes: u64,
    /// Worker respawn behaviour (backoff, storm breaker).
    pub restart: RestartPolicy,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: 2,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            queue_cap: 128,
            max_body: 1 << 20,
            default_deadline_ms: 10_000,
            read_deadline_ms: 5_000,
            cache_cap: 1024,
            retry: RetryPolicy::default(),
            journal_dir: None,
            resume: false,
            compact_bytes: journal::DEFAULT_COMPACT_BYTES,
            restart: RestartPolicy::default(),
        }
    }
}

/// Service counters, readable lock-free from `/stats`.
#[derive(Default)]
pub struct Stats {
    pub accepted: AtomicU64,
    pub completed: AtomicU64,
    pub shed: AtomicU64,
    pub jobs_ok: AtomicU64,
    pub jobs_err: AtomicU64,
    pub retries: AtomicU64,
    pub http_errors: AtomicU64,
}

// --- Shutdown flag + signal handling -----------------------------------
//
// SIGTERM must trigger a *graceful* drain. The handler only stores to an
// AtomicBool, which is async-signal-safe.

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Programmatic trigger (tests; also wired to SIGTERM/SIGINT).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    signals::set_handler(signals::SIGTERM, handler);
    signals::set_handler(signals::SIGINT, handler);
}

/// The `/readyz` verdict, pure for unit tests: ready means "a job POSTed
/// right now would be computed", i.e. at least one live worker and
/// admission below the shed threshold. Liveness (`/healthz`) is separate:
/// a supervisor with zero workers is alive but not ready.
pub fn ready_decision(
    workers_alive: usize,
    queue_depth: usize,
    queue_cap: usize,
) -> (bool, Vec<&'static str>) {
    let mut reasons = Vec::new();
    if workers_alive == 0 {
        reasons.push("no_workers");
    }
    if queue_depth >= queue_cap {
        reasons.push("queue_full");
    }
    (reasons.is_empty(), reasons)
}

/// Shared server state handed to every handler thread.
struct Ctx {
    cfg: ServerConfig,
    cache: PlanCache,
    pool: Arc<Pool>,
    stats: Stats,
    queue: Bounded<TcpStream>,
}

/// Run the service until a shutdown signal, then drain and return. The
/// `Ok(())` return *is* the graceful-exit contract: every admitted
/// connection has been answered, every journal line fsynced, every worker
/// process reaped.
pub fn serve(cfg: ServerConfig) -> std::io::Result<()> {
    let workers = cfg.workers.max(1);
    let (journals, replay) = match &cfg.journal_dir {
        None => (Vec::new(), journal::Replay::default()),
        Some(dir) => {
            let (js, replay) = journal::open_dir(dir, workers, cfg.resume, cfg.compact_bytes)?;
            (js.into_iter().map(Arc::new).collect(), replay)
        }
    };

    let pool = Pool::start(
        PoolConfig {
            workers,
            restart: cfg.restart.clone(),
            retry: cfg.retry,
            ..PoolConfig::default()
        },
        journals,
    )?;

    let threads = cfg.threads.max(1);
    let ctx = Arc::new(Ctx {
        cache: PlanCache::new(cfg.cache_cap),
        pool,
        stats: Stats::default(),
        queue: Bounded::new(cfg.queue_cap),
        cfg,
    });

    // Replay before the listener opens: completed jobs preload the cache
    // with their original bytes; incomplete (orphaned) jobs re-run through
    // the pool so the crash left no work behind.
    if !replay.completed.is_empty() || !replay.incomplete.is_empty() {
        eprintln!(
            "ccdpd: journal replay — {} completed, {} incomplete",
            replay.completed.len(),
            replay.incomplete.len()
        );
    }
    for (fp, bytes) in replay.completed {
        ctx.cache.insert_done(&fp, bytes);
    }
    for (fp, spec) in replay.incomplete {
        match ctx.pool.run(&fp, &spec) {
            Ok(done) => {
                if done.cacheable {
                    ctx.cache.insert_done(&fp, done.response);
                }
                ctx.pool.stats.orphan_replays.fetch_add(1, Ordering::Relaxed);
                eprintln!("ccdpd: replayed orphaned job {fp}");
            }
            Err(e) => eprintln!("ccdpd: orphan replay of {fp} failed: {e:?}"),
        }
    }

    let listener = TcpListener::bind(&ctx.cfg.addr)?;
    listener.set_nonblocking(true)?;
    // The line supervising scripts (and the e2e tests) parse to learn the
    // actual port when binding :0.
    println!("ccdpd listening on {}", listener.local_addr()?);
    std::io::stdout().flush()?;

    let mut handles = Vec::with_capacity(threads);
    for _ in 0..threads {
        let ctx = Arc::clone(&ctx);
        handles.push(std::thread::spawn(move || {
            while let Some(stream) = ctx.queue.pop() {
                handle_conn(stream, &ctx);
            }
        }));
    }

    while !shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                ctx.stats.accepted.fetch_add(1, Ordering::Relaxed);
                // Socket-level timeout far below the request deadline:
                // reads return regularly so the deadline between reads is
                // actually checked against a silent or dribbling peer.
                let sock_to = Duration::from_millis(ctx.cfg.read_deadline_ms.clamp(50, 500));
                let _ = stream.set_read_timeout(Some(sock_to));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
                let _ = stream.set_nodelay(true);
                if let Err((stream, why)) = ctx.queue.try_push(stream) {
                    shed(stream, &ctx, why);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                eprintln!("ccdpd: accept error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // Drain: stop admitting, let handlers finish the backlog, then retire
    // the worker fleet.
    eprintln!("ccdpd: shutdown requested, draining {} queued connection(s)", ctx.queue.depth());
    ctx.queue.close();
    for h in handles {
        let _ = h.join();
    }
    ctx.pool.shutdown();
    eprintln!(
        "ccdpd: drained (completed {}, shed {})",
        ctx.stats.completed.load(Ordering::Relaxed),
        ctx.stats.shed.load(Ordering::Relaxed)
    );
    Ok(())
}

/// Admission control: the queue refused this connection. Read the request
/// (so the client can finish writing) and answer a structured 429. This
/// runs on the acceptor thread — the read timeout bounds how long an
/// overload can stall admission, and that stall is itself backpressure.
fn shed(mut stream: TcpStream, ctx: &Ctx, why: PushError) {
    ctx.stats.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = http::read_request(&mut stream, ctx.cfg.max_body);
    let (code, msg) = match why {
        PushError::Full => ("queue_full", "job queue at capacity; retry with backoff"),
        PushError::Closed => ("draining", "server is draining; retry elsewhere"),
    };
    let body = error_body(
        code,
        msg,
        vec![
            ("queue_depth", ctx.queue.depth().to_json()),
            ("queue_cap", ctx.queue.capacity().to_json()),
        ],
    );
    let bytes = http::response_bytes(429, "Too Many Requests", &body.to_string());
    http::write_response(&mut stream, &bytes);
}

fn respond_json(stream: &mut TcpStream, status: u16, reason: &str, body: &Json) {
    let bytes = http::response_bytes(status, reason, &body.to_string());
    http::write_response(stream, &bytes);
}

fn handle_conn(mut stream: TcpStream, ctx: &Ctx) {
    let deadline = http::Deadline::after_ms(ctx.cfg.read_deadline_ms);
    let req = match http::read_request_deadline(&mut stream, ctx.cfg.max_body, &deadline) {
        Ok(r) => r,
        Err(e) => {
            ctx.stats.http_errors.fetch_add(1, Ordering::Relaxed);
            let (status, reason) = e.status();
            // A timed-out client learns the budget it blew.
            let extra = match e {
                http::HttpError::Timeout { deadline_ms } => {
                    vec![("deadline_ms", deadline_ms.to_json())]
                }
                _ => vec![],
            };
            respond_json(&mut stream, status, reason, &error_body(e.code(), &e.to_string(), extra));
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            // Liveness only: the supervisor is up and answering.
            respond_json(
                &mut stream,
                200,
                "OK",
                &Json::obj([("status", "ok".to_json()), ("role", "supervisor".to_json())]),
            );
        }
        ("GET", "/readyz") => {
            handle_readyz(&mut stream, ctx);
        }
        ("GET", "/stats") => {
            let body = stats_json(ctx);
            respond_json(&mut stream, 200, "OK", &body);
        }
        ("GET", path) if path.starts_with("/result/") => {
            handle_result(&mut stream, ctx, &path["/result/".len()..]);
        }
        ("POST", "/jobs") => {
            handle_job(&mut stream, ctx, &req.body);
            ctx.stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        (_, _) => {
            respond_json(
                &mut stream,
                404,
                "Not Found",
                &error_body("not_found", "unknown route", vec![]),
            );
        }
    }
}

/// `GET /readyz`: 200 when a job would actually be computed right now,
/// 503 with machine-readable reasons otherwise.
fn handle_readyz(stream: &mut TcpStream, ctx: &Ctx) {
    let workers_alive = ctx.pool.workers_alive();
    let depth = ctx.queue.depth();
    let cap = ctx.queue.capacity();
    let (ready, reasons) = ready_decision(workers_alive, depth, cap);
    let body = Json::obj([
        ("status", if ready { "ready".to_json() } else { "not_ready".to_json() }),
        ("reasons", Json::arr(reasons.iter().map(|r| r.to_json()))),
        ("workers_alive", workers_alive.to_json()),
        ("workers_total", ctx.pool.workers_total().to_json()),
        ("queue_depth", depth.to_json()),
        ("queue_cap", cap.to_json()),
    ]);
    if ready {
        respond_json(stream, 200, "OK", &body);
    } else {
        respond_json(stream, 503, "Service Unavailable", &body);
    }
}

/// `GET /result/<fingerprint>`: the cached response of a completed job,
/// byte-identical to what its original `POST /jobs` returned (the cache
/// stores full serialized responses). 404 when unknown — including jobs
/// whose outcome was flaky and therefore never stored.
fn handle_result(stream: &mut TcpStream, ctx: &Ctx, fp: &str) {
    if Fingerprint::parse_hex(fp).is_none() {
        respond_json(
            stream,
            400,
            "Bad Request",
            &error_body("bad_fingerprint", "expected 32 hex digits", vec![]),
        );
        return;
    }
    match ctx.cache.lookup_done(fp) {
        Some(bytes) => http::write_response(stream, &bytes),
        None => respond_json(
            stream,
            404,
            "Not Found",
            &error_body("not_found", "no completed job with this fingerprint", vec![]),
        ),
    }
}

fn handle_job(stream: &mut TcpStream, ctx: &Ctx, body: &[u8]) {
    let doc = match std::str::from_utf8(body).ok().and_then(|t| ccdp_json::parse(t).ok()) {
        Some(d) => d,
        None => {
            ctx.stats.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_json(
                stream,
                400,
                "Bad Request",
                &error_body("bad_json", "body is not valid JSON", vec![]),
            );
            return;
        }
    };
    let spec = match JobSpec::from_json(&doc, ctx.cfg.default_deadline_ms) {
        Ok(s) => s,
        Err(msg) => {
            ctx.stats.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_json(stream, 400, "Bad Request", &error_body("bad_request", &msg, vec![]));
            return;
        }
    };
    let fp = spec.fingerprint().to_hex();

    match ctx.cache.claim(&fp) {
        Claim::Hit(bytes) => http::write_response(stream, &bytes),
        Claim::Join(flight) => {
            // Generous bound: the leader's worst case is every attempt
            // burning its full deadline, plus re-dispatches.
            let bound = Duration::from_millis(
                spec.deadline_ms * u64::from(ctx.cfg.retry.max_attempts) + 20_000,
            );
            match flight.wait(bound) {
                Some(bytes) => http::write_response(stream, &bytes),
                None => respond_json(
                    stream,
                    500,
                    "Internal Server Error",
                    &error_body("leader_lost", "in-flight computation never completed", vec![]),
                ),
            }
        }
        Claim::Leader => {
            let (bytes, cacheable) = match ctx.pool.run(&fp, &spec) {
                Ok(done) => {
                    ctx.stats.retries.fetch_add(u64::from(done.retries), Ordering::Relaxed);
                    if done.status == 200 {
                        ctx.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        ctx.stats.jobs_err.fetch_add(1, Ordering::Relaxed);
                    }
                    (done.response, done.cacheable)
                }
                Err(RunError::NoWorkers) => {
                    ctx.stats.jobs_err.fetch_add(1, Ordering::Relaxed);
                    let body = error_body(
                        "no_workers",
                        "no live worker available; retry with backoff",
                        vec![("fingerprint", fp.to_json())],
                    );
                    (
                        http::response_bytes(503, "Service Unavailable", &body.to_string()),
                        false,
                    )
                }
                Err(RunError::WorkerLost { redispatches }) => {
                    ctx.stats.jobs_err.fetch_add(1, Ordering::Relaxed);
                    let body = error_body(
                        "worker_lost",
                        "workers kept dying while running this job",
                        vec![
                            ("fingerprint", fp.to_json()),
                            ("redispatches", u64::from(redispatches).to_json()),
                        ],
                    );
                    (
                        http::response_bytes(500, "Internal Server Error", &body.to_string()),
                        false,
                    )
                }
            };
            let bytes = Arc::new(bytes);
            ctx.cache.publish(&fp, Arc::clone(&bytes), cacheable);
            http::write_response(stream, &bytes);
        }
    }
}

fn stats_json(ctx: &Ctx) -> Json {
    let s = &ctx.stats;
    let hits = ctx.cache.hits.load(Ordering::Relaxed);
    let joins = ctx.cache.joins.load(Ordering::Relaxed);
    let misses = ctx.cache.misses.load(Ordering::Relaxed);
    let lookups = hits + joins + misses;
    let hit_rate =
        if lookups > 0 { (hits + joins) as f64 / lookups as f64 } else { 0.0 };
    let ps = &ctx.pool.stats;
    Json::obj([
        ("status", "ok".to_json()),
        ("accepted", s.accepted.load(Ordering::Relaxed).to_json()),
        ("completed", s.completed.load(Ordering::Relaxed).to_json()),
        ("shed", s.shed.load(Ordering::Relaxed).to_json()),
        ("jobs_ok", s.jobs_ok.load(Ordering::Relaxed).to_json()),
        ("jobs_err", s.jobs_err.load(Ordering::Relaxed).to_json()),
        ("retries", s.retries.load(Ordering::Relaxed).to_json()),
        ("http_errors", s.http_errors.load(Ordering::Relaxed).to_json()),
        ("queue_depth", ctx.queue.depth().to_json()),
        ("queue_cap", ctx.queue.capacity().to_json()),
        ("cache_entries", ctx.cache.len().to_json()),
        ("cache_hits", hits.to_json()),
        ("cache_joins", joins.to_json()),
        ("cache_misses", misses.to_json()),
        ("cache_hit_rate", hit_rate.to_json()),
        ("workers", ctx.cfg.workers.to_json()),
        ("workers_total", ctx.pool.workers_total().to_json()),
        ("workers_alive", ctx.pool.workers_alive().to_json()),
        ("threads", ctx.cfg.threads.to_json()),
        ("restarts", ps.restarts.load(Ordering::Relaxed).to_json()),
        ("redispatches", ps.redispatches.load(Ordering::Relaxed).to_json()),
        ("orphan_replays", ps.orphan_replays.load(Ordering::Relaxed).to_json()),
        ("breaker_trips", ps.breaker_trips.load(Ordering::Relaxed).to_json()),
    ])
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn ready_decision_covers_the_matrix() {
        assert_eq!(ready_decision(2, 0, 8), (true, vec![]));
        assert_eq!(ready_decision(1, 7, 8), (true, vec![]));
        assert_eq!(ready_decision(0, 0, 8), (false, vec!["no_workers"]));
        assert_eq!(ready_decision(2, 8, 8), (false, vec!["queue_full"]));
        assert_eq!(ready_decision(0, 9, 8), (false, vec!["no_workers", "queue_full"]));
    }
}
