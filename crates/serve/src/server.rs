//! The ccdpd server proper: accept loop, bounded worker pool, admission
//! control, single-flight caching, journaling, and graceful drain.
//!
//! Life of a request:
//!
//! 1. The acceptor accepts the connection. If the bounded queue is full,
//!    the request is read and answered `429 {"code":"queue_full"}` right
//!    there — shedding is a structured response, never a dropped
//!    connection — and the queue depth never exceeds its bound.
//! 2. A worker pops the connection, reads the request (every parse error
//!    is a structured 4xx), and dispatches: `/healthz`, `/stats`,
//!    `/result/<fp>`, or `POST /jobs`.
//! 3. A job claims its fingerprint in the cache: a hit answers with the
//!    original response bytes; a join waits for the in-flight leader; the
//!    leader journals the job, runs it (retry with exponential backoff on
//!    flaky failures only), journals the response of any deterministic
//!    outcome, publishes to cache + joiners, and responds.
//! 4. SIGTERM/SIGINT flips a flag: the acceptor stops admitting, workers
//!    drain the backlog (finishing — and journaling — everything
//!    in-flight), and the process exits 0.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ccdp_core::Fingerprint;
use ccdp_json::{Json, ToJson};

use crate::api::{error_body, run_job, JobSpec, RetryPolicy};
use crate::cache::{Claim, PlanCache};
use crate::http;
use crate::journal::JobJournal;
use crate::queue::{Bounded, PushError};

/// Tuning knobs; `Default` is sized for a local instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the chosen address is
    /// printed to stdout as `ccdpd listening on <addr>`).
    pub addr: String,
    pub workers: usize,
    /// Admission-control bound: connections queued beyond the workers.
    pub queue_cap: usize,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Deadline for jobs that do not set `deadline_ms` themselves.
    pub default_deadline_ms: u64,
    pub cache_cap: usize,
    pub retry: RetryPolicy,
    /// Job journal path; `None` disables journaling (still crash-safe for
    /// clients — they just see a dropped connection and re-submit).
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal instead of truncating it.
    pub resume: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7077".to_string(),
            workers: std::thread::available_parallelism().map_or(4, |n| n.get().min(8)),
            queue_cap: 128,
            max_body: 1 << 20,
            default_deadline_ms: 10_000,
            cache_cap: 1024,
            retry: RetryPolicy::default(),
            journal: None,
            resume: false,
        }
    }
}

/// Service counters, readable lock-free from `/stats`.
#[derive(Default)]
pub struct Stats {
    pub accepted: AtomicU64,
    pub completed: AtomicU64,
    pub shed: AtomicU64,
    pub jobs_ok: AtomicU64,
    pub jobs_err: AtomicU64,
    pub retries: AtomicU64,
    pub http_errors: AtomicU64,
}

// --- Shutdown flag + signal handling -----------------------------------
//
// SIGTERM must trigger a *graceful* drain, and this workspace carries no
// FFI crates, so the one libc call needed (`signal`) is declared directly.
// The handler only stores to an AtomicBool, which is async-signal-safe.

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Programmatic trigger (tests; also wired to SIGTERM/SIGINT).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Shared server state handed to every worker.
struct Ctx {
    cfg: ServerConfig,
    cache: PlanCache,
    journal: Option<JobJournal>,
    stats: Stats,
    queue: Bounded<TcpStream>,
}

/// Run the service until a shutdown signal, then drain and return. The
/// `Ok(())` return *is* the graceful-exit contract: every admitted
/// connection has been answered and every journal line fsynced.
pub fn serve(cfg: ServerConfig) -> std::io::Result<()> {
    let (journal, replay) = match &cfg.journal {
        None => (None, crate::journal::Replay::default()),
        Some(path) => {
            let (j, r) = JobJournal::open(path, cfg.resume)?;
            (Some(j), r)
        }
    };

    let workers = cfg.workers.max(1);
    let ctx = Arc::new(Ctx {
        cache: PlanCache::new(cfg.cache_cap),
        journal,
        stats: Stats::default(),
        queue: Bounded::new(cfg.queue_cap),
        cfg,
    });

    // Replay before the listener opens: completed jobs preload the cache
    // with their original bytes; incomplete jobs re-run to completion so
    // the crash left no work behind.
    if !replay.completed.is_empty() || !replay.incomplete.is_empty() {
        eprintln!(
            "ccdpd: journal replay — {} completed, {} incomplete",
            replay.completed.len(),
            replay.incomplete.len()
        );
    }
    for (fp, bytes) in replay.completed {
        ctx.cache.insert_done(&fp, bytes);
    }
    for (fp, spec) in replay.incomplete {
        let res = run_job(&spec, &ctx.cfg.retry);
        let bytes = http::response_bytes(res.status.0, res.status.1, &res.body.to_string());
        if res.cacheable {
            if let Some(j) = &ctx.journal {
                if let Err(e) = j.record_done(&fp, &bytes) {
                    eprintln!("ccdpd: journal write failed: {e}");
                }
            }
            ctx.cache.insert_done(&fp, bytes);
        }
        eprintln!("ccdpd: replayed incomplete job {fp}");
    }

    let listener = TcpListener::bind(&ctx.cfg.addr)?;
    listener.set_nonblocking(true)?;
    // The one stdout line: supervisors (and the e2e tests) parse it to
    // learn the actual port when binding :0.
    println!("ccdpd listening on {}", listener.local_addr()?);
    std::io::stdout().flush()?;

    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let ctx = Arc::clone(&ctx);
        handles.push(std::thread::spawn(move || {
            while let Some(stream) = ctx.queue.pop() {
                handle_conn(stream, &ctx);
            }
        }));
    }

    while !shutdown_requested() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                ctx.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                let _ = stream.set_nodelay(true);
                if let Err((stream, why)) = ctx.queue.try_push(stream) {
                    shed(stream, &ctx, why);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                eprintln!("ccdpd: accept error: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }

    // Drain: stop admitting, let workers finish the backlog, then exit.
    eprintln!("ccdpd: shutdown requested, draining {} queued connection(s)", ctx.queue.depth());
    ctx.queue.close();
    for h in handles {
        let _ = h.join();
    }
    eprintln!(
        "ccdpd: drained (completed {}, shed {})",
        ctx.stats.completed.load(Ordering::Relaxed),
        ctx.stats.shed.load(Ordering::Relaxed)
    );
    Ok(())
}

/// Admission control: the queue refused this connection. Read the request
/// (so the client can finish writing) and answer a structured 429. This
/// runs on the acceptor thread — the read timeout bounds how long an
/// overload can stall admission, and that stall is itself backpressure.
fn shed(mut stream: TcpStream, ctx: &Ctx, why: PushError) {
    ctx.stats.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = http::read_request(&mut stream, ctx.cfg.max_body);
    let (code, msg) = match why {
        PushError::Full => ("queue_full", "job queue at capacity; retry with backoff"),
        PushError::Closed => ("draining", "server is draining; retry elsewhere"),
    };
    let body = error_body(
        code,
        msg,
        vec![
            ("queue_depth", ctx.queue.depth().to_json()),
            ("queue_cap", ctx.queue.capacity().to_json()),
        ],
    );
    let bytes = http::response_bytes(429, "Too Many Requests", &body.to_string());
    http::write_response(&mut stream, &bytes);
}

fn respond_json(stream: &mut TcpStream, status: u16, reason: &str, body: &Json) {
    let bytes = http::response_bytes(status, reason, &body.to_string());
    http::write_response(stream, &bytes);
}

fn handle_conn(mut stream: TcpStream, ctx: &Ctx) {
    let req = match http::read_request(&mut stream, ctx.cfg.max_body) {
        Ok(r) => r,
        Err(e) => {
            ctx.stats.http_errors.fetch_add(1, Ordering::Relaxed);
            let (status, reason) = e.status();
            respond_json(&mut stream, status, reason, &error_body(e.code(), &e.to_string(), vec![]));
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            respond_json(&mut stream, 200, "OK", &Json::obj([("status", "ok".to_json())]));
        }
        ("GET", "/stats") => {
            let body = stats_json(ctx);
            respond_json(&mut stream, 200, "OK", &body);
        }
        ("GET", path) if path.starts_with("/result/") => {
            handle_result(&mut stream, ctx, &path["/result/".len()..]);
        }
        ("POST", "/jobs") => {
            handle_job(&mut stream, ctx, &req.body);
            ctx.stats.completed.fetch_add(1, Ordering::Relaxed);
        }
        (_, _) => {
            respond_json(
                &mut stream,
                404,
                "Not Found",
                &error_body("not_found", "unknown route", vec![]),
            );
        }
    }
}

/// `GET /result/<fingerprint>`: the cached response of a completed job,
/// byte-identical to what its original `POST /jobs` returned (the cache
/// stores full serialized responses). 404 when unknown — including jobs
/// whose outcome was flaky and therefore never stored.
fn handle_result(stream: &mut TcpStream, ctx: &Ctx, fp: &str) {
    if Fingerprint::parse_hex(fp).is_none() {
        respond_json(
            stream,
            400,
            "Bad Request",
            &error_body("bad_fingerprint", "expected 32 hex digits", vec![]),
        );
        return;
    }
    match ctx.cache.lookup_done(fp) {
        Some(bytes) => http::write_response(stream, &bytes),
        None => respond_json(
            stream,
            404,
            "Not Found",
            &error_body("not_found", "no completed job with this fingerprint", vec![]),
        ),
    }
}

fn handle_job(stream: &mut TcpStream, ctx: &Ctx, body: &[u8]) {
    let doc = match std::str::from_utf8(body).ok().and_then(|t| ccdp_json::parse(t).ok()) {
        Some(d) => d,
        None => {
            ctx.stats.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_json(
                stream,
                400,
                "Bad Request",
                &error_body("bad_json", "body is not valid JSON", vec![]),
            );
            return;
        }
    };
    let spec = match JobSpec::from_json(&doc, ctx.cfg.default_deadline_ms) {
        Ok(s) => s,
        Err(msg) => {
            ctx.stats.http_errors.fetch_add(1, Ordering::Relaxed);
            respond_json(stream, 400, "Bad Request", &error_body("bad_request", &msg, vec![]));
            return;
        }
    };
    let fp = spec.fingerprint().to_hex();

    match ctx.cache.claim(&fp) {
        Claim::Hit(bytes) => http::write_response(stream, &bytes),
        Claim::Join(flight) => {
            // Generous bound: the leader's worst case is every attempt
            // burning its full deadline plus backoff.
            let bound = Duration::from_millis(
                spec.deadline_ms * u64::from(ctx.cfg.retry.max_attempts) + 10_000,
            );
            match flight.wait(bound) {
                Some(bytes) => http::write_response(stream, &bytes),
                None => respond_json(
                    stream,
                    500,
                    "Internal Server Error",
                    &error_body("leader_lost", "in-flight computation never completed", vec![]),
                ),
            }
        }
        Claim::Leader => {
            if let Some(j) = &ctx.journal {
                if let Err(e) = j.record_job(&fp, &spec) {
                    // Degrade, don't die: the job still runs, it just
                    // loses crash coverage.
                    eprintln!("ccdpd: journal write failed: {e}");
                }
            }
            let res = run_job(&spec, &ctx.cfg.retry);
            ctx.stats.retries.fetch_add(u64::from(res.retries), Ordering::Relaxed);
            if res.status.0 == 200 {
                ctx.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
            } else {
                ctx.stats.jobs_err.fetch_add(1, Ordering::Relaxed);
            }
            let bytes = http::response_bytes(res.status.0, res.status.1, &res.body.to_string());
            if res.cacheable {
                if let Some(j) = &ctx.journal {
                    if let Err(e) = j.record_done(&fp, &bytes) {
                        eprintln!("ccdpd: journal write failed: {e}");
                    }
                }
            }
            let bytes = Arc::new(bytes);
            ctx.cache.publish(&fp, Arc::clone(&bytes), res.cacheable);
            http::write_response(stream, &bytes);
        }
    }
}

fn stats_json(ctx: &Ctx) -> Json {
    let s = &ctx.stats;
    let hits = ctx.cache.hits.load(Ordering::Relaxed);
    let joins = ctx.cache.joins.load(Ordering::Relaxed);
    let misses = ctx.cache.misses.load(Ordering::Relaxed);
    let lookups = hits + joins + misses;
    let hit_rate =
        if lookups > 0 { (hits + joins) as f64 / lookups as f64 } else { 0.0 };
    Json::obj([
        ("status", "ok".to_json()),
        ("accepted", s.accepted.load(Ordering::Relaxed).to_json()),
        ("completed", s.completed.load(Ordering::Relaxed).to_json()),
        ("shed", s.shed.load(Ordering::Relaxed).to_json()),
        ("jobs_ok", s.jobs_ok.load(Ordering::Relaxed).to_json()),
        ("jobs_err", s.jobs_err.load(Ordering::Relaxed).to_json()),
        ("retries", s.retries.load(Ordering::Relaxed).to_json()),
        ("http_errors", s.http_errors.load(Ordering::Relaxed).to_json()),
        ("queue_depth", ctx.queue.depth().to_json()),
        ("queue_cap", ctx.queue.capacity().to_json()),
        ("cache_entries", ctx.cache.len().to_json()),
        ("cache_hits", hits.to_json()),
        ("cache_joins", joins.to_json()),
        ("cache_misses", misses.to_json()),
        ("cache_hit_rate", hit_rate.to_json()),
        ("workers", ctx.cfg.workers.to_json()),
    ])
}
