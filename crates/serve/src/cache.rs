//! Content-addressed response cache with single-flight deduplication.
//!
//! Keys are job fingerprints (stable 128-bit content hashes from
//! `ccdp_core::Fingerprinter`); values are the *complete serialized HTTP
//! response bytes* of the first computation, so every cache hit — and
//! every journal replay after a crash — is byte-identical to the original
//! response, headers included.
//!
//! Single-flight: when N identical jobs arrive concurrently, the first
//! claimant becomes the leader and computes; the other N-1 join its
//! in-flight slot and block until the leader publishes, then all receive
//! the leader's exact bytes. A duplicate storm therefore costs one
//! compile, not N.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One in-flight computation other threads can wait on.
pub struct Flight {
    slot: Mutex<Option<Arc<Vec<u8>>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight { slot: Mutex::new(None), done: Condvar::new() }
    }

    /// Wait for the leader's bytes. `None` after `timeout` — the leader
    /// died without publishing (a bug or a killed worker); the joiner
    /// answers with an internal error instead of hanging forever.
    pub fn wait(&self, timeout: Duration) -> Option<Arc<Vec<u8>>> {
        let mut slot = self.slot.lock().unwrap();
        let deadline = std::time::Instant::now() + timeout;
        while slot.is_none() {
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (s, res) = self.done.wait_timeout(slot, left).unwrap();
            slot = s;
            if res.timed_out() && slot.is_none() {
                return None;
            }
        }
        slot.clone()
    }

    fn publish(&self, bytes: Arc<Vec<u8>>) {
        *self.slot.lock().unwrap() = Some(bytes);
        self.done.notify_all();
    }
}

enum Slot {
    Pending(Arc<Flight>),
    Done(Arc<Vec<u8>>),
}

/// What `claim` decided for this request.
pub enum Claim {
    /// First claimant: compute, then `publish`.
    Leader,
    /// Already computed: respond with these bytes immediately.
    Hit(Arc<Vec<u8>>),
    /// Same job is in flight: wait on it.
    Join(Arc<Flight>),
}

struct Inner {
    slots: HashMap<String, Slot>,
    /// Completion order of `Done` entries, for FIFO eviction.
    order: VecDeque<String>,
}

/// The service-wide cache. Counters are plain atomics so `/stats` can read
/// them without taking the map lock.
pub struct PlanCache {
    cap: usize,
    inner: Mutex<Inner>,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub joins: AtomicU64,
}

impl PlanCache {
    pub fn new(cap: usize) -> PlanCache {
        PlanCache {
            cap: cap.max(1),
            inner: Mutex::new(Inner { slots: HashMap::new(), order: VecDeque::new() }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            joins: AtomicU64::new(0),
        }
    }

    /// Claim `key`: hit, join the in-flight leader, or become the leader.
    pub fn claim(&self, key: &str) -> Claim {
        let mut inner = self.inner.lock().unwrap();
        match inner.slots.get(key) {
            Some(Slot::Done(bytes)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Hit(Arc::clone(bytes))
            }
            Some(Slot::Pending(flight)) => {
                self.joins.fetch_add(1, Ordering::Relaxed);
                Claim::Join(Arc::clone(flight))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                inner.slots.insert(key.to_string(), Slot::Pending(Arc::new(Flight::new())));
                Claim::Leader
            }
        }
    }

    /// Leader hand-off: wake all joiners with `bytes`, then either keep the
    /// entry (`store` — deterministic outcome) or drop it (flaky outcome:
    /// the next identical request recomputes).
    pub fn publish(&self, key: &str, bytes: Arc<Vec<u8>>, store: bool) {
        let mut inner = self.inner.lock().unwrap();
        let flight = match inner.slots.remove(key) {
            Some(Slot::Pending(f)) => Some(f),
            other => {
                // Put back whatever was there (replay preload can race a
                // live leader; last writer wins is fine, both are
                // byte-identical by construction).
                if let Some(s) = other {
                    inner.slots.insert(key.to_string(), s);
                }
                None
            }
        };
        if store {
            inner.slots.insert(key.to_string(), Slot::Done(Arc::clone(&bytes)));
            inner.order.push_back(key.to_string());
            self.evict_excess(&mut inner);
        }
        drop(inner);
        if let Some(f) = flight {
            f.publish(bytes);
        }
    }

    /// Preload a completed entry (journal replay at startup).
    pub fn insert_done(&self, key: &str, bytes: Vec<u8>) {
        let mut inner = self.inner.lock().unwrap();
        if !matches!(inner.slots.get(key), Some(Slot::Pending(_))) {
            inner.slots.insert(key.to_string(), Slot::Done(Arc::new(bytes)));
            inner.order.push_back(key.to_string());
            self.evict_excess(&mut inner);
        }
    }

    /// Completed-entry lookup without claiming (the `/result/<fp>` path).
    pub fn lookup_done(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        match self.inner.lock().unwrap().slots.get(key) {
            Some(Slot::Done(bytes)) => Some(Arc::clone(bytes)),
            _ => None,
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn evict_excess(&self, inner: &mut Inner) {
        while inner.order.len() > self.cap {
            let Some(old) = inner.order.pop_front() else { break };
            if matches!(inner.slots.get(&old), Some(Slot::Done(_))) {
                inner.slots.remove(&old);
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use std::thread;

    #[test]
    fn leader_then_hits() {
        let c = PlanCache::new(8);
        assert!(matches!(c.claim("k"), Claim::Leader));
        c.publish("k", Arc::new(b"resp".to_vec()), true);
        match c.claim("k") {
            Claim::Hit(b) => assert_eq!(&**b, b"resp"),
            _ => panic!("expected hit"),
        }
        assert_eq!(c.hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn joiners_get_leader_bytes() {
        let c = Arc::new(PlanCache::new(8));
        assert!(matches!(c.claim("k"), Claim::Leader));
        let mut joiners = Vec::new();
        for _ in 0..4 {
            let flight = match c.claim("k") {
                Claim::Join(f) => f,
                _ => panic!("expected join"),
            };
            joiners.push(thread::spawn(move || flight.wait(Duration::from_secs(5))));
        }
        c.publish("k", Arc::new(b"once".to_vec()), true);
        for j in joiners {
            assert_eq!(&**j.join().unwrap().unwrap(), b"once");
        }
        // One compute for five requests.
        assert_eq!(c.misses.load(Ordering::Relaxed), 1);
        assert_eq!(c.joins.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn flaky_outcomes_are_not_stored() {
        let c = PlanCache::new(8);
        assert!(matches!(c.claim("k"), Claim::Leader));
        c.publish("k", Arc::new(b"timeout".to_vec()), false);
        assert!(matches!(c.claim("k"), Claim::Leader)); // recompute
    }

    #[test]
    fn abandoned_flight_times_out() {
        let c = PlanCache::new(8);
        assert!(matches!(c.claim("k"), Claim::Leader));
        let Claim::Join(f) = c.claim("k") else { panic!() };
        assert!(f.wait(Duration::from_millis(30)).is_none());
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let c = PlanCache::new(2);
        for k in ["a", "b", "c"] {
            assert!(matches!(c.claim(k), Claim::Leader));
            c.publish(k, Arc::new(k.as_bytes().to_vec()), true);
        }
        assert_eq!(c.len(), 2);
        assert!(c.lookup_done("a").is_none());
        assert!(c.lookup_done("c").is_some());
    }
}
