//! `ccdp-serve`: the CCDP pipeline as a crash-tolerant job service.
//!
//! The batch harness (`ccdp-bench`) answers "regenerate the paper's
//! tables"; this crate answers "keep answering *arbitrary submitted
//! programs* correctly while overloaded, killed, and restarted". It is a
//! dependency-free HTTP/1.1 JSON server (`std::net` + a worker pool) in
//! front of the verify → plan → simulate pipeline, with:
//!
//! * **admission control** — a bounded queue; overload is shed as a
//!   structured `429 queue_full`, never an unbounded backlog
//!   ([`queue`]);
//! * **single-flight plan caching** — jobs are content-addressed by a
//!   stable 128-bit fingerprint; concurrent duplicates cost one compile
//!   and every hit is byte-identical to the first response ([`cache`]);
//! * **deadline + retry discipline** — per-job wall deadlines on top of
//!   the simulator's cycle/step budgets; flaky failures (panic, timeout)
//!   retry with exponential backoff, deterministic failures never do
//!   ([`api`]);
//! * **crash-safe journaling** — fsynced job/done lines over
//!   `ccdp_bench::journal`'s torn-tail-tolerant format; `kill -9` then
//!   restart replays to byte-identical responses ([`journal`]);
//! * **graceful drain** — SIGTERM stops admission, finishes in-flight
//!   work, exits 0 ([`server`]).
//!
//! Binaries: `ccdpd` (the daemon) and `loadgen` (profiles: ramp, spike,
//! soak, duplicate-storm, overload; merges a `service` section into
//! `BENCH_ccdp.json`, report schema v7).

pub mod api;
pub mod cache;
pub mod http;
pub mod journal;
pub mod queue;
pub mod server;

pub use api::{JobSpec, RetryPolicy};
pub use server::{serve, ServerConfig};
