//! `ccdp-serve`: the CCDP pipeline as a crash-tolerant job service.
//!
//! The batch harness (`ccdp-bench`) answers "regenerate the paper's
//! tables"; this crate answers "keep answering *arbitrary submitted
//! programs* correctly while overloaded, killed, and restarted". It is a
//! dependency-free HTTP/1.1 JSON server (`std::net` + a worker pool) in
//! front of the verify → plan → simulate pipeline, with:
//!
//! * **admission control** — a bounded queue; overload is shed as a
//!   structured `429 queue_full`, never an unbounded backlog
//!   ([`queue`]);
//! * **single-flight plan caching** — jobs are content-addressed by a
//!   stable 128-bit fingerprint; concurrent duplicates cost one compile
//!   and every hit is byte-identical to the first response ([`cache`]);
//! * **deadline + retry discipline** — per-job wall deadlines on top of
//!   the simulator's cycle/step budgets; flaky failures (panic, timeout)
//!   retry with exponential backoff, deterministic failures never do
//!   ([`api`]);
//! * **crash-safe journaling** — fsynced job/done lines over
//!   `ccdp_bench::journal`'s torn-tail-tolerant format, one journal per
//!   worker slot in a shared directory, compacted when they outgrow a
//!   threshold; `kill -9` then restart replays to byte-identical
//!   responses ([`journal`]);
//! * **process supervision** — N isolated worker processes (self-exec
//!   `--worker` mode, framed stdin/stdout protocol) under a supervisor
//!   that health-checks, restarts with exponential backoff behind a
//!   restart-storm circuit breaker, and re-dispatches the jobs of dead
//!   workers — a worker panic, `kill -9`, or OOM never takes down the
//!   acceptor ([`supervisor`], [`worker`]);
//! * **graceful drain** — SIGTERM stops admission, finishes in-flight
//!   work, retires the fleet, exits 0 ([`server`]).
//!
//! Binaries: `ccdpd` (the daemon), `loadgen` (profiles: ramp, spike,
//! soak, duplicate-storm, overload), and `chaos` (seeded kill-storm soak
//! asserting zero lost/duplicated/corrupted responses); both testers
//! merge into `BENCH_ccdp.json`'s `service` section (report schema v9).

pub mod api;
pub mod cache;
pub mod http;
pub mod journal;
pub mod queue;
pub mod server;
pub mod signals;
pub mod supervisor;
pub mod worker;

pub use api::{JobSpec, RetryPolicy};
pub use server::{serve, ServerConfig};
pub use supervisor::{FleetBreaker, Pool, RestartPolicy, RestartTracker};
