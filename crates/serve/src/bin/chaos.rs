//! `chaos` — crash-recovery soak tester for the supervised ccdpd.
//!
//! ```text
//! cargo run -p ccdp-serve --release --bin chaos -- --quick
//! cargo run -p ccdp-serve --release --bin chaos -- --seed 7 --workers 3
//! ```
//!
//! The harness owns the daemon: it runs an unkilled **baseline** pass to
//! record the canonical response bytes for a seeded job set (synthetic
//! `bench::synth` programs plus the loadgen sample kernels), then a
//! **chaos** pass over the same jobs while `kill -9`-ing random workers
//! mid-job at a configured cadence — and, unless disabled, SIGKILL-ing
//! the supervisor itself mid-soak and relaunching it with `--resume`.
//!
//! The assertions are the service's whole point:
//!
//! * **zero lost** — every job eventually gets a complete response
//!   (clients retry across supervisor restarts; a retry that never
//!   succeeds is a loss);
//! * **zero duplicated** — no response carries bytes past its declared
//!   length;
//! * **zero corrupted / mismatched** — every job's response is
//!   *byte-identical* to the unkilled baseline, headers included, no
//!   matter how many workers (or supervisors) died while computing it;
//! * the post-soak drain: SIGTERM exits 0.
//!
//! Results merge into `BENCH_ccdp.json` as `service.supervision`
//! (restarts, redispatches, orphan replays, recovery-latency p50/p99 —
//! report schema v9) unless `--no-merge`.
//!
//! Flags: `--quick`, `--seed S`, `--workers N`, `--kill-every-ms MS`,
//! `--no-supervisor-kill`, `--journal-dir DIR`, `--out PATH`,
//! `--no-merge`, `--ccdpd PATH`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ccdp_bench::report::SCHEMA_VERSION;
use ccdp_bench::synth::{random_program, SynthConfig};
use ccdp_ir::print_program;
use ccdp_json::{Json, ToJson};
use ccdp_serve::api::sample_program;

// ---------------------------------------------------------------- client

fn http_exchange(addr: &str, request: &[u8]) -> Result<Vec<u8>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    stream.set_nodelay(true).ok();
    stream.write_all(request).map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read: {e}"))?;
    if raw.is_empty() {
        return Err("empty response".to_string());
    }
    Ok(raw)
}

fn post_job(addr: &str, body: &str) -> Result<Vec<u8>, String> {
    let req = format!(
        "POST /jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    http_exchange(addr, req.as_bytes())
}

fn get(addr: &str, path: &str) -> Result<Vec<u8>, String> {
    http_exchange(addr, format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
}

fn status_of(raw: &[u8]) -> u16 {
    std::str::from_utf8(raw)
        .ok()
        .and_then(|t| t.lines().next())
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// Declared-length check: any bytes past `Content-Length` are a
/// duplicated/corrupted response.
fn excess_bytes(raw: &[u8]) -> Option<usize> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let content_length: usize = head
        .split("\r\n")
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())?;
    Some(raw.len().saturating_sub(head_end + 4 + content_length))
}

fn body_of(raw: &[u8]) -> &[u8] {
    raw.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map_or(&[][..], |p| &raw[p + 4..])
}

// ------------------------------------------------------------ the daemon

/// What the chaos harness knows about the running daemon, fed by the
/// stdout-parsing thread: the bound address and the live worker pids.
#[derive(Default)]
struct DaemonView {
    addr: Option<String>,
    worker_pids: HashMap<usize, u32>,
}

struct Daemon {
    child: Child,
    view: Arc<Mutex<DaemonView>>,
}

impl Daemon {
    fn spawn(ccdpd: &std::path::Path, workers: usize, journal_dir: Option<&str>, resume: bool) -> Daemon {
        let mut cmd = Command::new(ccdpd);
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--workers")
            .arg(workers.to_string())
            .arg("--queue-cap")
            .arg("64")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(dir) = journal_dir {
            cmd.arg("--journal-dir").arg(dir).arg("--compact-bytes").arg("65536");
            if resume {
                cmd.arg("--resume");
            }
        }
        let mut child = cmd.spawn().unwrap_or_else(|e| {
            eprintln!("chaos: cannot spawn ccdpd: {e}");
            std::process::exit(2);
        });
        let stdout = child.stdout.take().expect("piped stdout");
        let view = Arc::new(Mutex::new(DaemonView::default()));
        let thread_view = Arc::clone(&view);
        std::thread::spawn(move || {
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                let mut v = thread_view.lock().unwrap();
                if let Some(rest) = line.strip_prefix("ccdpd listening on ") {
                    v.addr = Some(rest.trim().to_string());
                } else if let Some(rest) = line.strip_prefix("ccdpd worker ") {
                    let mut it = rest.split_whitespace();
                    if let (Some(slot), Some("pid"), Some(pid)) = (it.next(), it.next(), it.next())
                    {
                        if let (Ok(slot), Ok(pid)) = (slot.parse(), pid.parse()) {
                            v.worker_pids.insert(slot, pid);
                        }
                    }
                }
            }
        });
        Daemon { child, view }
    }

    fn addr(&self) -> Option<String> {
        self.view.lock().unwrap().addr.clone()
    }

    /// Block until the daemon answers `/readyz` 200; panics on timeout.
    fn await_ready(&self, what: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Some(addr) = self.addr() {
                if let Ok(raw) = get(&addr, "/readyz") {
                    if status_of(&raw) == 200 {
                        return addr;
                    }
                }
            }
            assert!(Instant::now() < deadline, "chaos: {what} never became ready");
            std::thread::sleep(Duration::from_millis(30));
        }
    }

    fn worker_pids(&self) -> Vec<(usize, u32)> {
        let v = self.view.lock().unwrap();
        v.worker_pids.iter().map(|(&s, &p)| (s, p)).collect()
    }

    fn signal(&self, sig: &str) {
        let _ = Command::new("kill").arg(sig).arg(self.child.id().to_string()).status();
    }

    fn wait_exit(mut self) -> Option<i32> {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            match self.child.try_wait() {
                Ok(Some(st)) => return st.code(),
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(30))
                }
                _ => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    return None;
                }
            }
        }
    }
}

fn stat(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn stats_snapshot(addr: &str) -> Json {
    get(addr, "/stats")
        .ok()
        .and_then(|raw| std::str::from_utf8(body_of(&raw)).ok().map(str::to_string))
        .and_then(|b| ccdp_json::parse(&b).ok())
        .unwrap_or(Json::Null)
}

// ---------------------------------------------------------------- chaos

/// Tiny deterministic xorshift for kill scheduling and job shuffling —
/// the soak is seeded end to end.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e3779b97f4a7c15);
        self.0 = x;
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The seeded job set: synthetic programs plus sample kernels, each as a
/// POST body. Deadlines are generous — chaos must never depend on flaky
/// (uncacheable) outcomes, or baseline and chaos bytes could diverge.
fn job_set(seed: u64, quick: bool) -> Vec<String> {
    let n_synth = if quick { 6 } else { 14 };
    let n_sample = if quick { 4 } else { 10 };
    let cfg = SynthConfig { max_arrays: 3, max_epochs: 4, extent: 12 };
    let mut jobs = Vec::new();
    for i in 0..n_synth {
        let text = print_program(&random_program(seed.wrapping_add(i as u64), &cfg));
        jobs.push(
            Json::obj([
                ("program", text.to_json()),
                ("n_pes", 2usize.to_json()),
                ("schemes", Json::arr(["base", "ccdp"].map(|s| s.to_json()))),
                ("deadline_ms", 30_000u64.to_json()),
            ])
            .to_string(),
        );
    }
    // The sample kernels are sized to take real wall time (hundreds of ms
    // each) so worker kills land *mid-compute*, not between jobs.
    for i in 0..n_sample {
        jobs.push(
            Json::obj([
                ("program", sample_program(260 + 20 * (i % 5), 8 + i % 3).to_json()),
                ("n_pes", 2usize.to_json()),
                ("schemes", Json::arr(["base", "ccdp"].map(|s| s.to_json()))),
                ("deadline_ms", 30_000u64.to_json()),
            ])
            .to_string(),
        );
    }
    jobs
}

struct SharedAddr {
    addr: Mutex<String>,
}

/// Submit one job until a byte-complete response arrives, riding across
/// worker kills and supervisor restarts. Transport errors and structured
/// retryable statuses (429 shed, 503 no-workers, 500 worker-lost) back
/// off and retry; anything else is final.
fn submit_until_final(
    shared: &SharedAddr,
    body: &str,
    retries: &AtomicU64,
) -> Result<Vec<u8>, String> {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut last_err = String::new();
    while Instant::now() < deadline {
        let addr = shared.addr.lock().unwrap().clone();
        match post_job(&addr, body) {
            Ok(raw) => {
                let status = status_of(&raw);
                if matches!(status, 429 | 503 | 500) {
                    retries.fetch_add(1, Ordering::Relaxed);
                    last_err = format!("retryable status {status}");
                    std::thread::sleep(Duration::from_millis(150));
                    continue;
                }
                return Ok(raw);
            }
            Err(e) => {
                // Supervisor down or connection reset mid-flight: retry
                // against whatever address the respawner publishes.
                retries.fetch_add(1, Ordering::Relaxed);
                last_err = e;
                std::thread::sleep(Duration::from_millis(150));
            }
        }
    }
    Err(format!("gave up after 120 s; last error: {last_err}"))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_merge = args.iter().any(|a| a == "--no-merge");
    let kill_supervisor = !args.iter().any(|a| a == "--no-supervisor-kill");
    let seed: u64 = flag_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(1997);
    let workers: usize =
        flag_value(&args, "--workers").and_then(|v| v.parse().ok()).unwrap_or(2).max(1);
    let kill_every = Duration::from_millis(
        flag_value(&args, "--kill-every-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 250 } else { 400 }),
    );
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_ccdp.json".to_string());
    let journal_dir = flag_value(&args, "--journal-dir")
        .unwrap_or_else(|| "results/chaos-journal".to_string());
    let ccdpd = flag_value(&args, "--ccdpd").map(std::path::PathBuf::from).unwrap_or_else(|| {
        let mut p = std::env::current_exe().expect("current_exe");
        p.set_file_name("ccdpd");
        p
    });
    std::fs::remove_dir_all(&journal_dir).ok();

    let jobs = job_set(seed, quick);
    // Each distinct job is submitted multiple times (shuffled) so crashes
    // land on fresh computes, cache hits, and duplicates alike.
    let reps = if quick { 2 } else { 3 };
    let mut rng = Rng(seed);
    let mut order: Vec<usize> = (0..jobs.len() * reps).map(|i| i % jobs.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.below(i + 1));
    }

    // ---- Pass 1: unkilled baseline — the canonical bytes. -------------
    eprintln!("chaos: baseline pass ({} distinct jobs)…", jobs.len());
    let daemon = Daemon::spawn(&ccdpd, workers, None, false);
    let addr = daemon.await_ready("baseline daemon");
    let mut baseline: Vec<Vec<u8>> = Vec::with_capacity(jobs.len());
    for (i, body) in jobs.iter().enumerate() {
        match post_job(&addr, body) {
            Ok(raw) => {
                let status = status_of(&raw);
                assert!(
                    status == 200 || status == 422 || status == 400,
                    "chaos: baseline job {i} got unexpected status {status}"
                );
                baseline.push(raw);
            }
            Err(e) => {
                eprintln!("chaos: baseline job {i} failed: {e}");
                std::process::exit(2);
            }
        }
    }
    daemon.signal("-TERM");
    assert_eq!(daemon.wait_exit(), Some(0), "baseline daemon must drain and exit 0");

    // ---- Pass 2: the kill storm. ---------------------------------------
    eprintln!(
        "chaos: chaos pass — seed {seed}, {workers} workers, worker kill every \
         {} ms, supervisor kill: {kill_supervisor}",
        kill_every.as_millis()
    );
    let daemon = Daemon::spawn(&ccdpd, workers, Some(&journal_dir), false);
    let addr = daemon.await_ready("chaos daemon");
    let shared = Arc::new(SharedAddr { addr: Mutex::new(addr) });
    let daemon = Arc::new(Mutex::new(Some(daemon)));

    let stop_killing = Arc::new(AtomicBool::new(false));
    let kills = Arc::new(AtomicU64::new(0));
    let client_retries = Arc::new(AtomicU64::new(0));
    let recovery_ms = Arc::new(Mutex::new(Vec::<f64>::new()));

    // The killer: every tick, SIGKILL a random live worker, then measure
    // how long until /readyz reports a full-strength fleet again.
    let killer = {
        let stop = Arc::clone(&stop_killing);
        let kills = Arc::clone(&kills);
        let recovery = Arc::clone(&recovery_ms);
        let shared = Arc::clone(&shared);
        let daemon = Arc::clone(&daemon);
        let mut rng = Rng(seed.wrapping_mul(31));
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(kill_every);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let pids = {
                    let guard = daemon.lock().unwrap();
                    match guard.as_ref() {
                        Some(d) => d.worker_pids(),
                        None => continue, // supervisor restart in progress
                    }
                };
                if pids.is_empty() {
                    continue;
                }
                let (slot, pid) = pids[rng.below(pids.len())];
                let _ = Command::new("kill").arg("-9").arg(pid.to_string()).status();
                kills.fetch_add(1, Ordering::Relaxed);
                eprintln!("chaos: killed worker {slot} (pid {pid})");
                let t0 = Instant::now();
                let deadline = t0 + Duration::from_secs(20);
                while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
                    let addr = shared.addr.lock().unwrap().clone();
                    if let Ok(raw) = get(&addr, "/readyz") {
                        if status_of(&raw) == 200 {
                            recovery.lock().unwrap().push(t0.elapsed().as_secs_f64() * 1e3);
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        })
    };

    // The clients: drain the shuffled work queue, verifying byte-identity
    // against the baseline for every response.
    let n_clients = 4usize;
    let next = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(Mutex::new(Vec::<String>::new()));
    let duplicated = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let supervisor_kills = Arc::new(AtomicU64::new(0));
    let accumulated = Arc::new(Mutex::new(HashMap::<String, u64>::new()));

    // Supervisor-kill choreography: after roughly half the requests, the
    // main thread SIGKILLs the supervisor and relaunches with --resume.
    let half = (order.len() / 2) as u64;

    std::thread::scope(|scope| {
        for _ in 0..n_clients {
            let shared = Arc::clone(&shared);
            let next = Arc::clone(&next);
            let failures = Arc::clone(&failures);
            let duplicated = Arc::clone(&duplicated);
            let completed = Arc::clone(&completed);
            let retries = Arc::clone(&client_retries);
            let order = &order;
            let jobs = &jobs;
            let baseline = &baseline;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::SeqCst) as usize;
                let Some(&job_idx) = order.get(i) else { break };
                match submit_until_final(&shared, &jobs[job_idx], &retries) {
                    Ok(raw) => {
                        if excess_bytes(&raw).unwrap_or(1) > 0 {
                            duplicated.fetch_add(1, Ordering::Relaxed);
                            failures
                                .lock()
                                .unwrap()
                                .push(format!("job {job_idx}: excess bytes"));
                        } else if raw != baseline[job_idx] {
                            failures.lock().unwrap().push(format!(
                                "job {job_idx}: bytes differ from baseline ({} vs {} bytes)",
                                raw.len(),
                                baseline[job_idx].len()
                            ));
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => {
                        failures.lock().unwrap().push(format!("job {job_idx}: LOST — {e}"));
                    }
                }
            });
        }

        // Main thread: the supervisor kill, once, mid-soak.
        if kill_supervisor {
            while completed.load(Ordering::Relaxed) < half.max(1) {
                std::thread::sleep(Duration::from_millis(50));
            }
            let old = daemon.lock().unwrap().take();
            if let Some(old) = old {
                // Fold this incarnation's counters in before killing it.
                let addr = shared.addr.lock().unwrap().clone();
                let snap = stats_snapshot(&addr);
                {
                    let mut acc = accumulated.lock().unwrap();
                    for k in ["restarts", "redispatches", "orphan_replays", "breaker_trips"] {
                        *acc.entry(k.to_string()).or_insert(0) += stat(&snap, k);
                    }
                }
                eprintln!("chaos: SIGKILL supervisor (pid {})", old.child.id());
                old.signal("-KILL");
                let _ = old.wait_exit();
                supervisor_kills.fetch_add(1, Ordering::Relaxed);
                let t0 = Instant::now();
                let fresh = Daemon::spawn(&ccdpd, workers, Some(&journal_dir), true);
                let new_addr = fresh.await_ready("resumed daemon");
                recovery_ms.lock().unwrap().push(t0.elapsed().as_secs_f64() * 1e3);
                *shared.addr.lock().unwrap() = new_addr;
                *daemon.lock().unwrap() = Some(fresh);
                eprintln!("chaos: supervisor resumed");
            }
        }
    });

    stop_killing.store(true, Ordering::SeqCst);
    let _ = killer.join();

    // Final incarnation counters + graceful drain.
    let addr = shared.addr.lock().unwrap().clone();
    let snap = stats_snapshot(&addr);
    {
        let mut acc = accumulated.lock().unwrap();
        for k in ["restarts", "redispatches", "orphan_replays", "breaker_trips"] {
            *acc.entry(k.to_string()).or_insert(0) += stat(&snap, k);
        }
    }
    let final_daemon = daemon.lock().unwrap().take();
    let drain_ok = match final_daemon {
        Some(d) => {
            d.signal("-TERM");
            d.wait_exit() == Some(0)
        }
        None => false,
    };

    let failures = failures.lock().unwrap();
    let acc = accumulated.lock().unwrap();
    let mut recovery = recovery_ms.lock().unwrap().clone();
    recovery.sort_by(|a, b| a.total_cmp(b));
    let requests = order.len() as u64;
    let done = completed.load(Ordering::Relaxed);
    let lost = requests.saturating_sub(done);
    let mismatched = failures.iter().filter(|f| f.contains("bytes differ")).count() as u64;
    let dup = duplicated.load(Ordering::Relaxed);
    // A soak with zero kills exercised nothing — the crash-recovery claims
    // would pass vacuously. Require the storm to have actually landed.
    let stormed = kills.load(Ordering::Relaxed) > 0;
    if !stormed {
        eprintln!("chaos: FAIL — no worker kill landed; soak too short or killer stalled");
    }
    let passed = failures.is_empty() && drain_ok && lost == 0 && stormed;

    eprintln!();
    eprintln!(
        "chaos: {requests} requests over {} distinct jobs — {done} completed, {lost} lost, \
         {dup} duplicated, {mismatched} mismatched",
        jobs.len()
    );
    eprintln!(
        "chaos: {} worker kills, {} supervisor kills, restarts {}, redispatches {}, \
         orphan replays {}, client retries {}",
        kills.load(Ordering::Relaxed),
        supervisor_kills.load(Ordering::Relaxed),
        acc.get("restarts").copied().unwrap_or(0),
        acc.get("redispatches").copied().unwrap_or(0),
        acc.get("orphan_replays").copied().unwrap_or(0),
        client_retries.load(Ordering::Relaxed),
    );
    eprintln!(
        "chaos: recovery p50 {:.0} ms, p99 {:.0} ms over {} events; drain exit 0: {drain_ok}",
        percentile(&recovery, 0.50),
        percentile(&recovery, 0.99),
        recovery.len()
    );

    let section = Json::obj([
        ("seed", seed.to_json()),
        ("quick", quick.to_json()),
        ("workers", workers.to_json()),
        ("distinct_jobs", jobs.len().to_json()),
        ("requests", requests.to_json()),
        ("worker_kills", kills.load(Ordering::Relaxed).to_json()),
        ("supervisor_kills", supervisor_kills.load(Ordering::Relaxed).to_json()),
        ("restarts", acc.get("restarts").copied().unwrap_or(0).to_json()),
        ("redispatches", acc.get("redispatches").copied().unwrap_or(0).to_json()),
        ("orphan_replays", acc.get("orphan_replays").copied().unwrap_or(0).to_json()),
        ("breaker_trips", acc.get("breaker_trips").copied().unwrap_or(0).to_json()),
        ("client_retries", client_retries.load(Ordering::Relaxed).to_json()),
        ("recovery_p50_ms", percentile(&recovery, 0.50).to_json()),
        ("recovery_p99_ms", percentile(&recovery, 0.99).to_json()),
        ("recovery_events", recovery.len().to_json()),
        ("lost", lost.to_json()),
        ("duplicated", dup.to_json()),
        ("mismatched", mismatched.to_json()),
        ("byte_identical", (mismatched == 0).to_json()),
        ("drain_exit_zero", drain_ok.to_json()),
        ("passed", passed.to_json()),
    ]);
    if !no_merge {
        merge_supervision(&out, section);
    }

    for f in failures.iter().take(20) {
        eprintln!("chaos: FAIL — {f}");
    }
    if !passed {
        eprintln!("chaos: FAILED");
        std::process::exit(1);
    }
    eprintln!("chaos: all crash-recovery assertions passed");
}

/// Merge as `service.supervision`, preserving the rest of the `service`
/// section (loadgen's profiles) and bumping `schema_version` — the
/// supervision subsection is the v9 addition.
fn merge_supervision(out: &str, section: Json) {
    let path = std::path::Path::new(out);
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| ccdp_json::parse(&s).ok())
        .unwrap_or_else(|| {
            Json::obj([
                ("schema_version", SCHEMA_VERSION.to_json()),
                (
                    "paper",
                    "A Compiler-Directed Cache Coherence Scheme Using Data Prefetching"
                        .to_json(),
                ),
            ])
        });
    if let Json::Obj(pairs) = &mut doc {
        for (k, v) in pairs.iter_mut() {
            if k == "schema_version" {
                *v = SCHEMA_VERSION.to_json();
            }
        }
        let service = pairs.iter_mut().find(|(k, _)| k == "service").map(|(_, v)| v);
        match service {
            Some(Json::Obj(sp)) => {
                sp.retain(|(k, _)| k != "supervision");
                sp.push(("supervision".to_string(), section));
            }
            _ => {
                pairs.retain(|(k, _)| k != "service");
                pairs.push((
                    "service".to_string(),
                    Json::obj([("supervision", section)]),
                ));
            }
        }
    }
    match ccdp_json::write_atomic(path, &doc.to_pretty()) {
        Ok(()) => eprintln!("merged service.supervision into {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
