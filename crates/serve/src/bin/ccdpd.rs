//! `ccdpd` — the CCDP job service daemon.
//!
//! ```text
//! cargo run -p ccdp-serve --release --bin ccdpd -- --addr 127.0.0.1:7077
//! curl -s localhost:7077/healthz
//! curl -s -X POST localhost:7077/jobs -d '{"program": "..."}'
//! ```
//!
//! Flags:
//!   --addr A            bind address (default 127.0.0.1:7077; port 0 = pick)
//!   --workers N         worker threads (default: min(cores, 8))
//!   --queue-cap N       admission-control queue bound (default 128)
//!   --max-body BYTES    request body cap (default 1 MiB)
//!   --deadline-ms MS    default per-job deadline (default 10000)
//!   --cache-cap N       cached responses kept (default 1024)
//!   --journal PATH      enable crash-safe job journaling
//!   --resume            resume/replay an existing journal (with --journal)
//!
//! SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight and
//! queued work, exit 0. The single stdout line `ccdpd listening on <addr>`
//! reports the bound address (parseable when binding port 0).

use ccdp_serve::server::{install_signal_handlers, serve};
use ccdp_serve::ServerConfig;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("unparseable {name} value {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        addr: flag_value(&args, "--addr").unwrap_or(defaults.addr),
        workers: parsed(&args, "--workers", defaults.workers).max(1),
        queue_cap: parsed(&args, "--queue-cap", defaults.queue_cap).max(1),
        max_body: parsed(&args, "--max-body", defaults.max_body).max(1024),
        default_deadline_ms: parsed(&args, "--deadline-ms", defaults.default_deadline_ms).max(1),
        cache_cap: parsed(&args, "--cache-cap", defaults.cache_cap).max(1),
        retry: defaults.retry,
        journal: flag_value(&args, "--journal").map(std::path::PathBuf::from),
        resume: args.iter().any(|a| a == "--resume"),
    };
    install_signal_handlers();
    if let Err(e) = serve(cfg) {
        eprintln!("ccdpd: fatal: {e}");
        std::process::exit(1);
    }
}
