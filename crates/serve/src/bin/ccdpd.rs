//! `ccdpd` — the supervised CCDP job service daemon.
//!
//! ```text
//! cargo run -p ccdp-serve --release --bin ccdpd -- --addr 127.0.0.1:7077 \
//!     --workers 4 --journal-dir results/ccdpd-journal --resume
//! curl -s localhost:7077/healthz
//! curl -s localhost:7077/readyz
//! curl -s -X POST localhost:7077/jobs -d '{"program": "..."}'
//! ```
//!
//! The process supervises `--workers N` isolated compute processes (it
//! re-executes itself with `--worker`); a worker panic, `kill -9`, or OOM
//! costs a re-dispatch, never the listener.
//!
//! Flags:
//!   --addr A              bind address (default 127.0.0.1:7077; port 0 = pick)
//!   --workers N           worker processes (default 2, or $CCDP_SERVE_WORKERS)
//!   --threads N           connection-handler threads (default: min(cores, 8))
//!   --queue-cap N         admission-control queue bound (default 128)
//!   --max-body BYTES      request body cap (default 1 MiB)
//!   --deadline-ms MS      default per-job deadline (default 10000)
//!   --read-deadline-ms MS slow-client guard: full request within MS (default 5000)
//!   --cache-cap N         cached responses kept (default 1024)
//!   --journal-dir DIR     enable crash-safe journaling (one file per worker)
//!   --resume              resume/replay an existing journal dir (with --journal-dir)
//!   --compact-bytes N     per-slot journal compaction threshold
//!                         (default 4 MiB, or $CCDP_COMPACT_BYTES; 0 = off)
//!   --worker              internal: run as a worker child (stdin/stdout frames)
//!
//! SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight and
//! queued work, retire the worker fleet, exit 0. Stdout carries one
//! `ccdpd worker <slot> pid <pid>` line per (re)spawn and one
//! `ccdpd listening on <addr>` line once the listener is up (parseable
//! when binding port 0).

use ccdp_core::EnvOverrides;
use ccdp_serve::server::{install_signal_handlers, serve};
use ccdp_serve::ServerConfig;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn parsed<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag_value(args, name) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("unparseable {name} value {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--worker") {
        let slot = parsed(&args, "--worker-slot", 0usize);
        if let Err(e) = ccdp_serve::worker::run_worker(slot) {
            eprintln!("ccdpd worker {slot}: fatal: {e}");
            std::process::exit(1);
        }
        return;
    }

    let env = EnvOverrides::from_env().unwrap_or_else(|e| {
        eprintln!("ccdpd: {e}");
        std::process::exit(2);
    });
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        addr: flag_value(&args, "--addr").unwrap_or(defaults.addr),
        workers: parsed(&args, "--workers", env.serve_workers.unwrap_or(defaults.workers))
            .max(1),
        threads: parsed(&args, "--threads", defaults.threads).max(1),
        queue_cap: parsed(&args, "--queue-cap", defaults.queue_cap).max(1),
        max_body: parsed(&args, "--max-body", defaults.max_body).max(1024),
        default_deadline_ms: parsed(&args, "--deadline-ms", defaults.default_deadline_ms).max(1),
        read_deadline_ms: parsed(&args, "--read-deadline-ms", defaults.read_deadline_ms).max(50),
        cache_cap: parsed(&args, "--cache-cap", defaults.cache_cap).max(1),
        retry: defaults.retry,
        journal_dir: flag_value(&args, "--journal-dir").map(std::path::PathBuf::from),
        resume: args.iter().any(|a| a == "--resume"),
        compact_bytes: parsed(
            &args,
            "--compact-bytes",
            env.compact_bytes.unwrap_or(defaults.compact_bytes),
        ),
        restart: defaults.restart,
    };
    install_signal_handlers();
    if let Err(e) = serve(cfg) {
        eprintln!("ccdpd: fatal: {e}");
        std::process::exit(1);
    }
}
