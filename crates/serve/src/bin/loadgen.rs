//! `loadgen` — load generator and correctness checker for `ccdpd`.
//!
//! ```text
//! cargo run -p ccdp-serve --release --bin loadgen -- --addr 127.0.0.1:7077
//! cargo run -p ccdp-serve --release --bin loadgen -- --quick
//! ```
//!
//! Drives five traffic profiles against a running server and *verifies*
//! the service contract while measuring it:
//!
//! * `ramp`  — stepped concurrency over distinct programs
//! * `spike` — one simultaneous burst of distinct programs
//! * `soak`  — sustained closed-loop mixed traffic
//! * `storm` — a duplicate storm: many clients, one program (single-flight
//!   cache must collapse it; responses must be byte-identical)
//! * `overload` — a burst sized past the server's queue bound (admission
//!   control must shed with structured `429 queue_full`)
//!
//! Every profile asserts zero lost (no response), duplicated (bytes past
//! the declared response), or corrupted (unparseable / wrong-shape)
//! responses. Results merge into `BENCH_ccdp.json` as the `service`
//! section (report schema v7) unless `--no-merge`.
//!
//! Flags: `--addr A`, `--quick`, `--profile NAME` (repeatable filter),
//! `--burst N` (overload concurrency), `--out PATH`, `--no-merge`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ccdp_bench::report::SCHEMA_VERSION;
use ccdp_json::{Json, ToJson};
use ccdp_serve::api::sample_program;

// ---------------------------------------------------------------- client

struct Response {
    status: u16,
    body: String,
    raw: Vec<u8>,
    /// Bytes received beyond the declared response — a duplicated or
    /// corrupted reply.
    excess: usize,
}

fn http_exchange(addr: &str, request: &[u8]) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    stream.set_nodelay(true).ok();
    stream.write_all(request).map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("read: {e}"))?;
    parse_response(raw)
}

fn post_job(addr: &str, body: &str) -> Result<Response, String> {
    let req = format!(
        "POST /jobs HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    http_exchange(addr, req.as_bytes())
}

fn get(addr: &str, path: &str) -> Result<Response, String> {
    http_exchange(addr, format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
}

fn parse_response(raw: Vec<u8>) -> Result<Response, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("no header terminator in response")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-utf8 head")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let content_length: usize = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .ok_or("response has no Content-Length")?;
    let body_start = head_end + 4;
    if raw.len() < body_start + content_length {
        return Err(format!(
            "truncated body: got {} of {content_length} bytes",
            raw.len() - body_start
        ));
    }
    let excess = raw.len() - body_start - content_length;
    let body = std::str::from_utf8(&raw[body_start..body_start + content_length])
        .map_err(|_| "non-utf8 body")?
        .to_string();
    Ok(Response { status, body, raw, excess })
}

// ------------------------------------------------------------- verifying

#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    ok: u64,
    shed: u64,
    rejected: u64,
    lost: u64,
    duplicated: u64,
    corrupted: u64,
}

impl Tally {
    /// Verify one exchange and fold it in. The body must be the service's
    /// JSON envelope: `status` of `ok`/`error`, errors carrying a `code`.
    fn record(&mut self, result: Result<Response, String>, elapsed: Duration, what: &str) {
        let r = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: LOST ({what}): {e}");
                self.lost += 1;
                return;
            }
        };
        self.latencies_ms.push(elapsed.as_secs_f64() * 1e3);
        if r.excess > 0 {
            eprintln!("loadgen: DUPLICATED ({what}): {} excess bytes", r.excess);
            self.duplicated += 1;
            return;
        }
        let doc = match ccdp_json::parse(&r.body) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("loadgen: CORRUPTED ({what}): {e}");
                self.corrupted += 1;
                return;
            }
        };
        match doc.get("status").and_then(Json::as_str) {
            Some("ok") if r.status == 200 => self.ok += 1,
            Some("error") if doc.get("code").and_then(Json::as_str).is_some() => {
                if doc.get("code").and_then(Json::as_str) == Some("queue_full") {
                    self.shed += 1;
                } else {
                    self.rejected += 1;
                }
            }
            _ => {
                eprintln!("loadgen: CORRUPTED ({what}): bad envelope {}", r.body);
                self.corrupted += 1;
            }
        }
    }

    fn merge(&mut self, other: Tally) {
        self.latencies_ms.extend(other.latencies_ms);
        self.ok += other.ok;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.lost += other.lost;
        self.duplicated += other.duplicated;
        self.corrupted += other.corrupted;
    }

    fn requests(&self) -> u64 {
        self.lost + self.latencies_ms.len() as u64
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct ProfileResult {
    name: &'static str,
    tally: Tally,
    wall: Duration,
    /// Extra profile-specific fields for the report section.
    extra: Vec<(&'static str, Json)>,
}

impl ProfileResult {
    fn to_json(&self) -> Json {
        let mut sorted = self.tally.latencies_ms.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let qps = if self.wall.as_secs_f64() > 0.0 {
            self.tally.requests() as f64 / self.wall.as_secs_f64()
        } else {
            0.0
        };
        let mut fields = vec![
            ("name".to_string(), self.name.to_json()),
            ("requests".to_string(), self.tally.requests().to_json()),
            ("ok".to_string(), self.tally.ok.to_json()),
            ("shed".to_string(), self.tally.shed.to_json()),
            ("rejected".to_string(), self.tally.rejected.to_json()),
            ("lost".to_string(), self.tally.lost.to_json()),
            ("duplicated".to_string(), self.tally.duplicated.to_json()),
            ("corrupted".to_string(), self.tally.corrupted.to_json()),
            ("wall_seconds".to_string(), self.wall.as_secs_f64().to_json()),
            ("qps".to_string(), qps.to_json()),
            ("p50_ms".to_string(), percentile(&sorted, 0.50).to_json()),
            ("p99_ms".to_string(), percentile(&sorted, 0.99).to_json()),
        ];
        fields.extend(self.extra.iter().map(|(k, v)| (k.to_string(), v.clone())));
        Json::Obj(fields)
    }
}

/// Fan `jobs` out over `concurrency` client threads (closed loop per
/// thread), verifying every exchange.
fn run_wave(addr: &str, jobs: &[String], concurrency: usize, what: &str) -> (Tally, Duration) {
    let next = Mutex::new(0usize);
    let total = Mutex::new(Tally::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            scope.spawn(|| {
                let mut local = Tally::default();
                loop {
                    let i = {
                        let mut n = next.lock().unwrap();
                        let i = *n;
                        *n += 1;
                        i
                    };
                    let Some(body) = jobs.get(i) else { break };
                    let t0 = Instant::now();
                    let res = post_job(addr, body);
                    local.record(res, t0.elapsed(), what);
                }
                total.lock().unwrap().merge(local);
            });
        }
    });
    (total.into_inner().unwrap(), start.elapsed())
}

fn job_body(size: usize, reps: usize, n_pes: usize) -> String {
    Json::obj([
        ("program", sample_program(size, reps).to_json()),
        ("n_pes", n_pes.to_json()),
        ("schemes", Json::arr(["base", "ccdp"].map(|s| s.to_json()))),
    ])
    .to_string()
}

fn stats_snapshot(addr: &str) -> Json {
    get(addr, "/stats")
        .ok()
        .and_then(|r| ccdp_json::parse(&r.body).ok())
        .unwrap_or(Json::Null)
}

fn stat(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or(0)
}

// -------------------------------------------------------------- profiles

fn profile_ramp(addr: &str, quick: bool) -> ProfileResult {
    let steps: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let per_step = if quick { 6 } else { 16 };
    let mut tally = Tally::default();
    let mut wall = Duration::ZERO;
    let mut step_qps = Vec::new();
    for (si, &c) in steps.iter().enumerate() {
        let jobs: Vec<String> =
            (0..per_step).map(|i| job_body(8 + (si * per_step + i) % 7, 1 + i % 2, 4)).collect();
        let (t, w) = run_wave(addr, &jobs, c, "ramp");
        step_qps.push(Json::obj([
            ("concurrency", c.to_json()),
            ("qps", (t.requests() as f64 / w.as_secs_f64().max(1e-9)).to_json()),
        ]));
        tally.merge(t);
        wall += w;
    }
    ProfileResult { name: "ramp", tally, wall, extra: vec![("steps", Json::arr(step_qps))] }
}

fn profile_spike(addr: &str, quick: bool) -> ProfileResult {
    let c = if quick { 8 } else { 16 };
    let jobs: Vec<String> = (0..c).map(|i| job_body(9 + i % 5, 1, 4)).collect();
    let (tally, wall) = run_wave(addr, &jobs, c, "spike");
    ProfileResult { name: "spike", tally, wall, extra: vec![] }
}

fn profile_soak(addr: &str, quick: bool) -> ProfileResult {
    let n = if quick { 40 } else { 240 };
    let workers = 4;
    // Mixed traffic: a rotating set of distinct programs with repeats, so
    // the soak exercises both computes and cache hits.
    let jobs: Vec<String> = (0..n).map(|i| job_body(8 + i % 6, 1 + i % 3, 2 + 2 * (i % 2))).collect();
    let (tally, wall) = run_wave(addr, &jobs, workers, "soak");
    ProfileResult { name: "soak", tally, wall, extra: vec![] }
}

fn profile_storm(addr: &str, quick: bool) -> ProfileResult {
    let (threads, per_thread) = if quick { (8, 4) } else { (16, 8) };
    let before = stats_snapshot(addr);
    let body = job_body(11, 2, 4);
    let jobs: Vec<String> = vec![body; threads * per_thread];
    let (tally, wall) = run_wave(addr, &jobs, threads, "storm");

    // Byte-identity across the storm: every response to the identical
    // submission must equal the first, headers included.
    let first = post_job(addr, &jobs[0]).map(|r| r.raw).unwrap_or_default();
    let mut identical = true;
    for _ in 0..3 {
        if post_job(addr, &jobs[0]).map(|r| r.raw).unwrap_or_default() != first {
            identical = false;
        }
    }
    let after = stats_snapshot(addr);
    let lookups = (stat(&after, "cache_hits") + stat(&after, "cache_joins")
        + stat(&after, "cache_misses"))
        .saturating_sub(stat(&before, "cache_hits") + stat(&before, "cache_joins")
            + stat(&before, "cache_misses"));
    let new_misses = stat(&after, "cache_misses").saturating_sub(stat(&before, "cache_misses"));
    let hit_rate = if lookups > 0 {
        (lookups - new_misses.min(lookups)) as f64 / lookups as f64
    } else {
        0.0
    };
    ProfileResult {
        name: "storm",
        tally,
        wall,
        extra: vec![
            ("cache_hit_rate", hit_rate.to_json()),
            ("byte_identical", identical.to_json()),
        ],
    }
}

fn profile_overload(addr: &str, quick: bool, burst: usize) -> ProfileResult {
    // Slow-ish distinct jobs at a concurrency past the server's queue
    // bound: admission control must shed some with structured 429s.
    let n = if quick { burst } else { burst * 2 };
    let jobs: Vec<String> = (0..n).map(|i| job_body(24 + i % 4, 6, 8)).collect();
    let before = stats_snapshot(addr);
    let (tally, wall) = run_wave(addr, &jobs, burst, "overload");
    let after = stats_snapshot(addr);
    let max_depth_bound = stat(&after, "queue_cap");
    let shed_delta = stat(&after, "shed").saturating_sub(stat(&before, "shed"));
    ProfileResult {
        name: "overload",
        tally,
        wall,
        extra: vec![
            ("burst", burst.to_json()),
            ("server_shed", shed_delta.to_json()),
            ("queue_cap", max_depth_bound.to_json()),
        ],
    }
}

// ------------------------------------------------------------------ main

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{name}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let quick = args.iter().any(|a| a == "--quick");
    let no_merge = args.iter().any(|a| a == "--no-merge");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_ccdp.json".to_string());
    let burst: usize =
        flag_value(&args, "--burst").and_then(|v| v.parse().ok()).unwrap_or(48);
    let only: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--profile")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    let want = |name: &str| only.is_empty() || only.iter().any(|o| o == name);

    // Wait for the server.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match get(&addr, "/healthz") {
            Ok(r) if r.status == 200 => break,
            _ if Instant::now() > deadline => {
                eprintln!("loadgen: no healthy server at {addr}");
                std::process::exit(2);
            }
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }

    let mut results = Vec::new();
    if want("ramp") {
        results.push(profile_ramp(&addr, quick));
    }
    if want("spike") {
        results.push(profile_spike(&addr, quick));
    }
    if want("soak") {
        results.push(profile_soak(&addr, quick));
    }
    if want("storm") {
        results.push(profile_storm(&addr, quick));
    }
    if want("overload") {
        results.push(profile_overload(&addr, quick, burst));
    }

    // The human-readable QPS table.
    eprintln!();
    eprintln!(
        "{:<10} {:>8} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "profile", "requests", "ok", "shed", "rej", "qps", "p50 ms", "p99 ms"
    );
    for r in &results {
        let j = r.to_json();
        eprintln!(
            "{:<10} {:>8} {:>6} {:>6} {:>6} {:>9.1} {:>9.1} {:>9.1}",
            r.name,
            stat(&j, "requests"),
            stat(&j, "ok"),
            stat(&j, "shed"),
            stat(&j, "rejected"),
            j.get("qps").and_then(Json::as_f64).unwrap_or(0.0),
            j.get("p50_ms").and_then(Json::as_f64).unwrap_or(0.0),
            j.get("p99_ms").and_then(Json::as_f64).unwrap_or(0.0),
        );
    }

    // The hard assertions from the service contract.
    let mut failures = Vec::new();
    let (mut lost, mut duplicated, mut corrupted) = (0u64, 0u64, 0u64);
    for r in &results {
        lost += r.tally.lost;
        duplicated += r.tally.duplicated;
        corrupted += r.tally.corrupted;
    }
    if lost + duplicated + corrupted > 0 {
        failures.push(format!(
            "response integrity violated: {lost} lost, {duplicated} duplicated, \
             {corrupted} corrupted"
        ));
    }
    if let Some(storm) = results.iter().find(|r| r.name == "storm") {
        let j = storm.to_json();
        let rate = j.get("cache_hit_rate").and_then(Json::as_f64).unwrap_or(0.0);
        if rate < 0.90 {
            failures.push(format!("duplicate-storm cache hit rate {rate:.3} < 0.90"));
        }
        if j.get("byte_identical") != Some(&Json::Bool(true)) {
            failures.push("duplicate-storm responses not byte-identical".to_string());
        }
    }
    if let Some(ov) = results.iter().find(|r| r.name == "overload") {
        if ov.tally.shed == 0 {
            failures.push(
                "overload produced no shed responses — raise --burst or lower the server's \
                 --queue-cap"
                    .to_string(),
            );
        }
    }

    let final_stats = stats_snapshot(&addr);
    let section = Json::obj([
        ("addr", addr.to_json()),
        ("quick", quick.to_json()),
        ("profiles", Json::arr(results.iter().map(|r| r.to_json()))),
        ("lost", lost.to_json()),
        ("duplicated", duplicated.to_json()),
        ("corrupted", corrupted.to_json()),
        ("server_stats", final_stats),
        ("passed", failures.is_empty().to_json()),
    ]);
    if !no_merge {
        merge_into_report(&out, section);
    }

    for f in &failures {
        eprintln!("loadgen: FAIL — {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
    eprintln!("loadgen: all service contract checks passed");
}

/// Merge the `service` section into the report document (the `lint` bin's
/// idiom), bumping `schema_version` to this binary's understanding — the
/// section is the v7 addition.
fn merge_into_report(out: &str, section: Json) {
    let path = std::path::Path::new(out);
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| ccdp_json::parse(&s).ok())
        .unwrap_or_else(|| {
            Json::obj([
                ("schema_version", SCHEMA_VERSION.to_json()),
                (
                    "paper",
                    "A Compiler-Directed Cache Coherence Scheme Using Data Prefetching"
                        .to_json(),
                ),
            ])
        });
    if let Json::Obj(pairs) = &mut doc {
        for (k, v) in pairs.iter_mut() {
            if k == "schema_version" {
                *v = SCHEMA_VERSION.to_json();
            }
        }
        pairs.retain(|(k, _)| k != "service");
        pairs.push(("service".to_string(), section));
    }
    match ccdp_json::write_atomic(path, &doc.to_pretty()) {
        Ok(()) => eprintln!("merged service section into {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
