//! DOALL iteration scheduling.

/// An inclusive iteration sub-range in *iteration-value* space (not
/// iteration-count space): the values the loop variable takes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IterRange {
    pub lo: i64,
    pub hi: i64,
    pub step: i64,
}

impl IterRange {
    pub fn count(&self) -> u64 {
        if self.lo > self.hi {
            0
        } else {
            ((self.hi - self.lo) / self.step + 1) as u64
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        let (lo, hi, step) = (self.lo, self.hi, self.step);
        (0..).map(move |k| lo + k * step).take_while(move |&v| v <= hi)
    }
}

/// Static block scheduling: PE `pe` of `n_pes` gets the `pe`-th contiguous
/// block of `ceil(count/n_pes)` iterations. Returns `None` when the PE gets
/// no iterations. This matches the paper's codes, where "loop iterations are
/// block distributed accordingly" to the data distribution.
pub fn doall_range_for_pe(
    lo: i64,
    hi: i64,
    step: i64,
    pe: usize,
    n_pes: usize,
) -> Option<IterRange> {
    debug_assert!(step >= 1 && n_pes >= 1);
    if lo > hi {
        return None;
    }
    let count = (hi - lo) / step + 1;
    let block = count.div_euclid(n_pes as i64)
        + if count % n_pes as i64 != 0 { 1 } else { 0 };
    let first = pe as i64 * block;
    let last = ((pe as i64 + 1) * block - 1).min(count - 1);
    if first > last {
        return None;
    }
    Some(IterRange { lo: lo + first * step, hi: lo + last * step, step })
}

/// Which PE executes iteration-value `v` under static block scheduling.
pub fn owner_of_iteration(lo: i64, hi: i64, step: i64, v: i64, n_pes: usize) -> usize {
    debug_assert!(v >= lo && v <= hi && (v - lo) % step == 0);
    let count = (hi - lo) / step + 1;
    let block = count.div_euclid(n_pes as i64)
        + if count % n_pes as i64 != 0 { 1 } else { 0 };
    let k = (v - lo) / step;
    ((k / block) as usize).min(n_pes - 1)
}

/// Iteration range of PE `pe` for a DOALL aligned to `decl`'s distributed
/// dimension (CRAFT `doshared` on a template): iteration `v` runs on the
/// owner of index `v` along that dimension. Falls back to count-block
/// scheduling for distributions without a contiguous block (cyclic) or for
/// strided loops.
pub fn aligned_range_for_pe(
    layout: &crate::Layout,
    decl: &ccdp_ir::ArrayDecl,
    lo: i64,
    hi: i64,
    step: i64,
    pe: usize,
) -> Option<IterRange> {
    if lo > hi {
        return None;
    }
    let dim = match layout.distribution(decl.id) {
        crate::Distribution::Block { dim }
        | crate::Distribution::GeneralizedBlock { dim } => dim,
        _ => return doall_range_for_pe(lo, hi, step, pe, layout.n_pes()),
    };
    if step != 1 {
        return doall_range_for_pe(lo, hi, step, pe, layout.n_pes());
    }
    let owned = layout.owned_section(decl, pe);
    if owned.is_empty() {
        return None;
    }
    let r = owned.dim(dim);
    let (olo, ohi) = (r.lo()?, r.hi()?);
    let lo = lo.max(olo);
    let hi = hi.min(ohi);
    (lo <= hi).then_some(IterRange { lo, hi, step: 1 })
}

/// Which PE executes iteration `v` of an aligned DOALL.
pub fn aligned_owner_of_iteration(
    layout: &crate::Layout,
    decl: &ccdp_ir::ArrayDecl,
    v: i64,
) -> usize {
    let dim = match layout.distribution(decl.id) {
        crate::Distribution::Block { dim }
        | crate::Distribution::GeneralizedBlock { dim } => dim,
        _ => unreachable!("aligned owner only for block distributions"),
    };
    let mut coords = vec![0i64; decl.rank()];
    coords[dim] = v;
    layout.owner(decl, &coords)
}

/// Chunk decomposition for dynamic self-scheduling: successive chunks of
/// `chunk` iterations, in order. The simulator hands these to idle PEs.
pub fn chunks(lo: i64, hi: i64, step: i64, chunk: u32) -> Vec<IterRange> {
    debug_assert!(step >= 1 && chunk >= 1);
    let mut out = Vec::new();
    if lo > hi {
        return out;
    }
    let count = (hi - lo) / step + 1;
    let c = chunk as i64;
    let mut first = 0i64;
    while first < count {
        let last = (first + c - 1).min(count - 1);
        out.push(IterRange { lo: lo + first * step, hi: lo + last * step, step });
        first += c;
    }
    out
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn block_ranges_partition_iterations() {
        for n_pes in [1usize, 2, 3, 4, 7] {
            for count in [1i64, 2, 5, 16, 17] {
                let (lo, hi, step) = (3, 3 + (count - 1) * 2, 2);
                let mut seen = Vec::new();
                for pe in 0..n_pes {
                    if let Some(r) = doall_range_for_pe(lo, hi, step, pe, n_pes) {
                        for v in r.iter() {
                            seen.push((v, pe));
                        }
                    }
                }
                assert_eq!(seen.len() as i64, count, "P={n_pes} N={count}");
                for (i, &(v, pe)) in seen.iter().enumerate() {
                    assert_eq!(v, lo + i as i64 * step);
                    assert_eq!(owner_of_iteration(lo, hi, step, v, n_pes), pe);
                }
            }
        }
    }

    #[test]
    fn empty_loop_yields_nothing() {
        assert!(doall_range_for_pe(5, 4, 1, 0, 2).is_none());
        assert!(chunks(5, 4, 1, 3).is_empty());
    }

    #[test]
    fn single_pe_gets_everything() {
        let r = doall_range_for_pe(0, 9, 1, 0, 1).unwrap();
        assert_eq!((r.lo, r.hi), (0, 9));
        assert_eq!(r.count(), 10);
    }

    #[test]
    fn chunk_decomposition_covers_all() {
        let cs = chunks(0, 10, 1, 4);
        assert_eq!(cs.len(), 3);
        assert_eq!((cs[0].lo, cs[0].hi), (0, 3));
        assert_eq!((cs[2].lo, cs[2].hi), (8, 10));
        let total: u64 = cs.iter().map(IterRange::count).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn chunk_respects_stride() {
        let cs = chunks(1, 13, 3, 2); // values 1,4,7,10,13
        assert_eq!(cs.len(), 3);
        assert_eq!((cs[1].lo, cs[1].hi), (7, 10));
        assert_eq!((cs[2].lo, cs[2].hi), (13, 13));
    }
}
