//! Array-to-PE data distributions.

use ccdp_ir::{ArrayDecl, ArrayId, Program, Sharing};
use ccdp_sections::{Range, Section};

/// How one shared array's elements are mapped to PE local memories.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Distribution {
    /// Contiguous blocks of size `ceil(extent/n_pes)` along dimension `dim`.
    /// With `dim` = the last dimension of a column-major array this is the
    /// CRAFT `(:,:BLOCK)` distribution the paper's codes use.
    Block { dim: usize },
    /// Round-robin along dimension `dim` (CRAFT `:CYCLIC`).
    Cyclic { dim: usize },
    /// CRAFT's *generalized* distribution (used by the paper's TOMCATV and
    /// SWIM codes): element→PE mapping identical to [`Distribution::Block`],
    /// but the software address translation is substantially more expensive
    /// (general div/mod arithmetic instead of a shift) — the machine model
    /// charges `MachineConfig::craft_generalized` per BASE access.
    GeneralizedBlock { dim: usize },
    /// The whole array on one PE (serial data, scalars-as-arrays).
    OnePe { pe: usize },
}

/// The distribution of every shared array in a program, plus the PE count.
#[derive(Clone, Debug)]
pub struct Layout {
    n_pes: usize,
    dists: Vec<Distribution>,
}

impl Layout {
    /// Default layout: block distribution along each array's *last*
    /// dimension (contiguous in column-major memory), which is what the
    /// paper's BASE and CCDP codes do for all four kernels.
    pub fn new(program: &Program, n_pes: usize) -> Layout {
        assert!(n_pes >= 1);
        let dists = program
            .arrays
            .iter()
            .map(|a| Distribution::Block { dim: a.rank() - 1 })
            .collect();
        Layout { n_pes, dists }
    }

    pub fn n_pes(&self) -> usize {
        self.n_pes
    }

    /// Override one array's distribution.
    pub fn set(&mut self, array: ArrayId, d: Distribution) {
        self.dists[array.index()] = d;
    }

    pub fn distribution(&self, array: ArrayId) -> Distribution {
        self.dists[array.index()]
    }

    /// Block size along the distributed dimension.
    fn block_size(&self, extent: usize) -> usize {
        extent.div_ceil(self.n_pes)
    }

    /// Which PE owns a shared-array element. Private arrays have no owner
    /// (each PE holds its own copy); callers must not ask.
    pub fn owner(&self, decl: &ArrayDecl, coords: &[i64]) -> usize {
        debug_assert_eq!(decl.sharing, Sharing::Shared, "owner() of private array");
        match self.dists[decl.id.index()] {
            Distribution::Block { dim } | Distribution::GeneralizedBlock { dim } => {
                let b = self.block_size(decl.extents[dim]);
                ((coords[dim] as usize) / b).min(self.n_pes - 1)
            }
            Distribution::Cyclic { dim } => (coords[dim] as usize) % self.n_pes,
            Distribution::OnePe { pe } => pe,
        }
    }

    /// The section of a shared array owned by `pe` (may be empty for high
    /// PE numbers when the extent doesn't divide).
    pub fn owned_section(&self, decl: &ArrayDecl, pe: usize) -> Section {
        debug_assert!(pe < self.n_pes);
        let full: Vec<Range> = decl
            .extents
            .iter()
            .map(|&e| Range::dense(0, e as i64 - 1))
            .collect();
        let mut dims = full;
        match self.dists[decl.id.index()] {
            Distribution::Block { dim } | Distribution::GeneralizedBlock { dim } => {
                let e = decl.extents[dim] as i64;
                let b = self.block_size(decl.extents[dim]) as i64;
                let lo = pe as i64 * b;
                let hi = ((pe as i64 + 1) * b - 1).min(e - 1);
                dims[dim] = Range::dense(lo, hi);
            }
            Distribution::Cyclic { dim } => {
                let e = decl.extents[dim] as i64;
                dims[dim] = Range::strided(pe as i64, e - 1, self.n_pes as i64);
            }
            Distribution::OnePe { pe: owner } => {
                if owner != pe {
                    return Section::empty(decl.rank());
                }
            }
        }
        Section::new(dims)
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    fn mk(n: usize) -> (Program, ArrayId) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[n, n]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, n as i64 - 1, |e, i| e.assign(a.at2(i, 0), 0.0));
        });
        let p = pb.finish().unwrap();
        (p, a.id())
    }

    #[test]
    fn block_ownership_partitions() {
        let (p, aid) = mk(10);
        let l = Layout::new(&p, 4); // block size ceil(10/4)=3
        let decl = p.array(aid);
        // Every element has exactly one owner, consistent with owned_section.
        for j in 0..10i64 {
            let o = l.owner(decl, &[0, j]);
            let mut owners = 0;
            for pe in 0..4 {
                if l.owned_section(decl, pe).contains(&[0, j]) {
                    owners += 1;
                    assert_eq!(pe, o);
                }
            }
            assert_eq!(owners, 1, "element {j} must have exactly one owner");
        }
    }

    #[test]
    fn block_last_pe_may_be_short_or_empty() {
        let (p, aid) = mk(4);
        let l = Layout::new(&p, 3); // block 2: PE0 {0,1}, PE1 {2,3}, PE2 {}
        let decl = p.array(aid);
        assert!(l.owned_section(decl, 2).is_empty());
        assert_eq!(l.owner(decl, &[0, 3]), 1);
    }

    #[test]
    fn cyclic_ownership() {
        let (p, aid) = mk(8);
        let mut l = Layout::new(&p, 3);
        l.set(aid, Distribution::Cyclic { dim: 1 });
        let decl = p.array(aid);
        assert_eq!(l.owner(decl, &[0, 0]), 0);
        assert_eq!(l.owner(decl, &[0, 4]), 1);
        assert_eq!(l.owner(decl, &[0, 5]), 2);
        let s1 = l.owned_section(decl, 1);
        assert!(s1.contains(&[3, 1]) && s1.contains(&[3, 4]) && s1.contains(&[3, 7]));
        assert!(!s1.contains(&[3, 2]));
    }

    #[test]
    fn one_pe_owns_everything() {
        let (p, aid) = mk(5);
        let mut l = Layout::new(&p, 4);
        l.set(aid, Distribution::OnePe { pe: 2 });
        let decl = p.array(aid);
        assert_eq!(l.owner(decl, &[4, 4]), 2);
        assert!(l.owned_section(decl, 0).is_empty());
        assert_eq!(l.owned_section(decl, 2).len(), 25);
    }
}
