//! Data distributions and DOALL loop scheduling (CRAFT-style).
//!
//! In the paper's methodology (§5.2) each shared array is distributed across
//! PE local memories (block distribution of columns for MXM/VPENTA, a
//! "generalized" distribution for TOMCATV/SWIM — here: block along a chosen
//! dimension), and DOALL iterations are distributed to PEs *to match the data
//! distribution*. This crate provides both mappings; the stale reference
//! analysis uses them to compute per-PE access sections, and the simulator
//! uses them to decide local-vs-remote and iteration ownership.

mod layout;
mod schedule;

pub use layout::{Distribution, Layout};
pub use schedule::{
    aligned_owner_of_iteration, aligned_range_for_pe, chunks, doall_range_for_pe,
    owner_of_iteration, IterRange,
};

#[cfg(test)]
mod tests;
