//! Property tests: ownership is a partition; iteration scheduling is a
//! partition; block data+iteration alignment gives owner-computes locality.

use crate::{
    aligned_owner_of_iteration, aligned_range_for_pe, doall_range_for_pe,
    owner_of_iteration, Distribution, Layout,
};
use ccdp_ir::ProgramBuilder;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ownership_is_a_partition(
        n in 1usize..40,
        m in 1usize..40,
        n_pes in 1usize..9,
        dim in 0usize..2,
        cyclic in proptest::bool::ANY,
    ) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[n, m]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, n as i64 - 1, |e, i| e.assign(a.at2(i, 0), 0.0));
        });
        let p = pb.finish().unwrap();
        let mut l = Layout::new(&p, n_pes);
        l.set(a.id(), if cyclic {
            Distribution::Cyclic { dim }
        } else {
            Distribution::Block { dim }
        });
        let decl = p.array(a.id());
        for i in 0..n as i64 {
            for j in 0..m as i64 {
                let o = l.owner(decl, &[i, j]);
                prop_assert!(o < n_pes);
                let mut count = 0;
                for pe in 0..n_pes {
                    if l.owned_section(decl, pe).contains(&[i, j]) {
                        count += 1;
                        prop_assert_eq!(pe, o);
                    }
                }
                prop_assert_eq!(count, 1);
            }
        }
    }

    #[test]
    fn iteration_schedule_is_a_partition(
        lo in -20i64..20,
        count in 1i64..200,
        step in 1i64..5,
        n_pes in 1usize..17,
    ) {
        let hi = lo + (count - 1) * step;
        let mut total = 0u64;
        let mut prev_hi: Option<i64> = None;
        for pe in 0..n_pes {
            if let Some(r) = doall_range_for_pe(lo, hi, step, pe, n_pes) {
                total += r.count();
                if let Some(ph) = prev_hi {
                    prop_assert!(r.lo > ph, "ranges must be disjoint and ordered");
                }
                prev_hi = Some(r.hi);
                for v in r.iter() {
                    prop_assert_eq!(owner_of_iteration(lo, hi, step, v, n_pes), pe);
                }
            }
        }
        prop_assert_eq!(total, count as u64);
    }

    /// Aligned scheduling partitions the iteration space and agrees with
    /// data ownership: iteration v runs on the PE owning column v.
    #[test]
    fn aligned_ranges_partition_and_match_owners(
        extent in 2usize..50,
        n_pes in 1usize..9,
        lo in 0i64..4,
        generalized in proptest::bool::ANY,
    ) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[4, extent]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, 3, |e, i| e.assign(a.at2(i, 0), 0.0));
        });
        let p = pb.finish().unwrap();
        let mut l = Layout::new(&p, n_pes);
        if generalized {
            l.set(a.id(), Distribution::GeneralizedBlock { dim: 1 });
        }
        let decl = p.array(a.id());
        let hi = extent as i64 - 1;
        if lo > hi {
            return Ok(());
        }
        let mut seen = vec![false; (hi - lo + 1) as usize];
        for pe in 0..n_pes {
            if let Some(r) = aligned_range_for_pe(&l, decl, lo, hi, 1, pe) {
                for v in r.iter() {
                    prop_assert!(!seen[(v - lo) as usize], "iteration {v} double-assigned");
                    seen[(v - lo) as usize] = true;
                    prop_assert_eq!(aligned_owner_of_iteration(&l, decl, v), pe);
                    prop_assert_eq!(l.owner(decl, &[0, v]), pe,
                        "aligned iteration must be data-local");
                }
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "every iteration covered");
    }

    /// When the DOALL over columns is block-scheduled and the array is
    /// block-distributed along columns with matching extents, every PE's
    /// iterations touch only its own columns (owner-computes). This is the
    /// alignment property that makes VPENTA's stale references local in the
    /// paper (§5.4).
    #[test]
    fn block_alignment_gives_owner_computes(
        m in 1usize..60,
        n_pes in 1usize..9,
    ) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[4, m]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, 3, |e, i| e.assign(a.at2(i, 0), 0.0));
        });
        let p = pb.finish().unwrap();
        let l = Layout::new(&p, n_pes); // block along dim 1
        let decl = p.array(a.id());
        for pe in 0..n_pes {
            if let Some(r) = doall_range_for_pe(0, m as i64 - 1, 1, pe, n_pes) {
                for j in r.iter() {
                    prop_assert_eq!(l.owner(decl, &[0, j]), pe,
                        "m={} P={} j={}", m, n_pes, j);
                }
            }
        }
    }
}
