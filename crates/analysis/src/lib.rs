//! Compiler analyses for the CCDP scheme (paper §4.1):
//!
//! * **Per-PE access sections** ([`access`]): which elements of an array a
//!   given PE may read/write through a reference over a whole epoch, derived
//!   from the data distribution and the DOALL iteration schedule.
//! * **Stale reference analysis** ([`stale`]): the Choi–Yew style epoch
//!   data-flow that classifies every shared read reference as *clean* or
//!   *potentially stale*.
//! * **Locality analysis** ([`locality`]): uniformly generated reference
//!   groups and group-spatial locality with leading-reference selection
//!   (consumed by prefetch target analysis, paper Fig. 1).
//! * **Interprocedural summaries** ([`summary`]): per-routine read/write
//!   section summaries (SWIM's CALC1..CALC3).
//! * **Coverage obligations** ([`verify`]): an independent re-derivation of
//!   what a prefetch plan must protect, consumed by the `ccdp-lint` static
//!   soundness verifier and cross-checked against [`stale`].
//!
//! Everything is conservative in the direction that is safe for coherence:
//! when in doubt a reference is *potentially stale* (costs a prefetch, never
//! correctness).

pub mod access;
pub mod locality;
pub mod parallelize;
pub mod shard;
pub mod stale;
pub mod summary;
pub mod verify;

pub use access::{epoch_access_sections, ref_section_for_pe, EpochAccess, PeSections};
pub use locality::{find_uniform_groups, group_spatial, GroupSpatial, UniformGroup};
pub use parallelize::{auto_parallelize, LoopDecision, ParallelizeReport};
pub use shard::{
    shard_scan, shard_verdict, shard_verdict_partition, shared_base_words, ConflictWitness,
    DoallVerdict, ShardBlocker, ShardVerdict,
};
pub use stale::{analyze_stale, StaleAnalysis, StaleReason};
pub use summary::{summarize_routine, RoutineSummary};
pub use verify::{
    coverage_obligations, EpochObligations, Obligations, RaceObligation, ReadObligation,
};
