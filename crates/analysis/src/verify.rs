//! Coverage obligations for the static soundness verifier (`ccdp-lint`).
//!
//! This module re-derives, from first principles, what the emitted prefetch
//! plan *must* protect: per epoch, the set of shared reads that may observe
//! foreign-dirty data (with the [`StaleReason`] explaining why), plus any
//! write-write overlap between PEs inside one parallel phase (a race the
//! barrier model cannot order).
//!
//! The walk deliberately mirrors [`crate::stale::analyze_stale`] — same
//! schedule order, same two-pass `Repeat` back-edge handling, same
//! fold-before-classify rule for multi-phase epochs — so the two
//! implementations can cross-check each other (N-version programming). The
//! difference is the *output*: instead of a flat per-reference bitmap this
//! records, per epoch, the obligation each stale read imposes on the plan,
//! which the lint then discharges against the materialized prefetches.

use ccdp_dist::Layout;
use ccdp_ir::{
    find_doall, ArrayId, EpochId, EpochKind, Program, RefAccess, RefId, Sharing, VarId,
};
use ccdp_sections::SectionSet;

use crate::access::{epoch_access_sections, ref_is_pe_specific, ref_section_for_pe};
use crate::stale::StaleReason;

/// One read the plan must handle `Fresh` (with real prefetch coverage) or
/// `Bypass`.
#[derive(Clone, Copy, Debug)]
pub struct ReadObligation {
    pub rid: RefId,
    pub array: ArrayId,
    pub reason: StaleReason,
}

/// Two PEs may write the same element inside one barrier phase — nothing in
/// the epoch model orders these writes, so the program is racy regardless of
/// any prefetch plan.
#[derive(Clone, Debug)]
pub struct RaceObligation {
    pub array: ArrayId,
    /// The two conflicting write references (may be the same reference
    /// executed by different PEs).
    pub writes: (RefId, RefId),
    /// A witness PE pair whose write sections overlap.
    pub pes: (usize, usize),
}

/// Obligations attached to one epoch (the epoch at which the read first
/// becomes classifiable as stale, i.e. where the prefetch must be issued).
#[derive(Clone, Debug)]
pub struct EpochObligations {
    pub epoch: EpochId,
    pub label: String,
    pub reads: Vec<ReadObligation>,
    pub races: Vec<RaceObligation>,
}

/// Everything the plan owes the program, per epoch, in schedule order.
#[derive(Clone, Debug, Default)]
pub struct Obligations {
    pub per_epoch: Vec<EpochObligations>,
    pub n_shared_reads: usize,
}

impl Obligations {
    /// All read obligations, sorted by `RefId` (deduplicated by
    /// construction: staleness is monotone, each read is recorded once).
    pub fn stale_refs(&self) -> Vec<RefId> {
        let mut out: Vec<RefId> = self
            .per_epoch
            .iter()
            .flat_map(|e| e.reads.iter().map(|o| o.rid))
            .collect();
        out.sort_by_key(|r| r.index());
        out
    }

    pub fn reason_of(&self, rid: RefId) -> Option<StaleReason> {
        self.per_epoch
            .iter()
            .flat_map(|e| e.reads.iter())
            .find(|o| o.rid == rid)
            .map(|o| o.reason)
    }

    pub fn n_races(&self) -> usize {
        self.per_epoch.iter().map(|e| e.races.len()).sum()
    }
}

/// Re-derive the plan's coverage obligations. Mirrors `analyze_stale`'s
/// epoch data-flow; see the module docs for why the duplication is the
/// point, not an accident.
pub fn coverage_obligations(program: &Program, layout: &Layout) -> Obligations {
    let n_pes = layout.n_pes();
    let n_refs = program.n_refs as usize;
    let mut classified: Vec<bool> = vec![false; n_refs];
    let mut out = Obligations::default();
    let mut epoch_slot: std::collections::HashMap<EpochId, usize> =
        std::collections::HashMap::new();

    // One PE: no foreign writer exists, nothing is owed (matches
    // `analyze_stale`'s early return, including the shared-read count).
    if n_pes == 1 {
        let mut seen = std::collections::HashSet::new();
        for e in program.epochs() {
            if !seen.insert(e.id) {
                continue;
            }
            for cr in ccdp_ir::collect_refs_in_stmts(&e.stmts) {
                if cr.access == RefAccess::Read
                    && program.array(cr.r.array).sharing == Sharing::Shared
                {
                    out.n_shared_reads += 1;
                }
            }
        }
        return out;
    }

    let mut foreign: Vec<Vec<SectionSet>> = program
        .arrays
        .iter()
        .map(|a| vec![SectionSet::bottom(a.rank()); n_pes])
        .collect();

    let schedule = program.static_schedule();
    let any_repeat = schedule.iter().any(|s| s.in_repeat);
    let passes = if any_repeat { 2 } else { 1 };

    for pass in 0..passes {
        for sched in &schedule {
            let epoch = sched.epoch;
            let slot = *epoch_slot.entry(epoch.id).or_insert_with(|| {
                out.per_epoch.push(EpochObligations {
                    epoch: epoch.id,
                    label: epoch.label.clone(),
                    reads: Vec::new(),
                    races: Vec::new(),
                });
                out.per_epoch.len() - 1
            });
            let acc = epoch_access_sections(program, layout, epoch);
            let multi_phase = epoch.kind == EpochKind::Parallel
                && find_doall(&epoch.stmts).is_some_and(|(w, _)| !w.is_empty());

            if pass == 0 {
                out.per_epoch[slot].races = phase_races(program, layout, epoch, &acc);
            }

            if multi_phase {
                fold_foreign_writes(program, layout, &acc, &mut foreign);
            }

            for cr in &acc.refs {
                if cr.access != RefAccess::Read {
                    continue;
                }
                if program.array(cr.r.array).sharing != Sharing::Shared {
                    continue;
                }
                if pass == 0 {
                    out.n_shared_reads += 1;
                }
                let idx = cr.r.id.index();
                if classified[idx] {
                    continue; // staleness is monotone
                }
                let pe_specific = ref_is_pe_specific(epoch, cr);
                #[allow(clippy::needless_range_loop)]
                for pe in 0..n_pes {
                    let rs = ref_section_for_pe(program, layout, epoch, cr, pe);
                    if rs.is_empty() {
                        continue;
                    }
                    if foreign[cr.r.array.index()][pe].intersects(&rs) {
                        let reason = if !pe_specific {
                            StaleReason::Conservative
                        } else if multi_phase {
                            StaleReason::CrossPhaseSameEpoch
                        } else {
                            StaleReason::ForeignWriteEarlierEpoch
                        };
                        classified[idx] = true;
                        out.per_epoch[slot].reads.push(ReadObligation {
                            rid: cr.r.id,
                            array: cr.r.array,
                            reason,
                        });
                        break;
                    }
                }
            }

            if !multi_phase {
                fold_foreign_writes(program, layout, &acc, &mut foreign);
            }
        }
    }

    for e in &mut out.per_epoch {
        e.reads.sort_by_key(|o| o.rid.index());
    }
    out
}

/// Same fold as `stale::fold_writes`, re-stated here so the verifier stays
/// self-contained (the cross-validation test pins that both agree).
fn fold_foreign_writes(
    program: &Program,
    layout: &Layout,
    acc: &crate::access::EpochAccess,
    foreign: &mut [Vec<SectionSet>],
) {
    let n_pes = layout.n_pes();
    for (ai, per_pe) in acc.writes.iter().enumerate() {
        if program.arrays[ai].sharing != Sharing::Shared {
            continue;
        }
        if !acc.writes_pe_specific[ai] {
            let mut all = SectionSet::bottom(program.arrays[ai].rank());
            for w in per_pe {
                all.union_with(w);
            }
            for f in foreign[ai].iter_mut().take(n_pes) {
                f.union_with(&all);
            }
            continue;
        }
        for (q, wq) in per_pe.iter().enumerate().take(n_pes) {
            if wq.is_empty() {
                continue;
            }
            for (p, f) in foreign[ai].iter_mut().enumerate() {
                if p != q {
                    f.union_with(wq);
                }
            }
        }
    }
}

/// Write-write overlap between two PEs inside one parallel epoch phase.
///
/// Only *exact* write sections participate: the reference must be PE
/// specific, use no wrapper-loop variable (so its whole-epoch section equals
/// its per-phase section), and have at most one loop variable per subscript
/// dimension (multi-variable dimensions are bounding boxes, which would
/// raise false races). Dynamic DOALLs are excluded for the same reason —
/// that precision limit is documented at the lint level.
fn phase_races(
    program: &Program,
    layout: &Layout,
    epoch: &ccdp_ir::Epoch,
    acc: &crate::access::EpochAccess,
) -> Vec<RaceObligation> {
    if epoch.kind != EpochKind::Parallel {
        return Vec::new();
    }
    let n_pes = layout.n_pes();
    let wrapper_vars: Vec<VarId> = match find_doall(&epoch.stmts) {
        Some((wrappers, _)) => wrappers.iter().map(|l| l.var).collect(),
        None => Vec::new(),
    };
    let exact: Vec<&ccdp_ir::CollectedRef> = acc
        .refs
        .iter()
        .filter(|cr| {
            cr.access == RefAccess::Write
                && program.array(cr.r.array).sharing == Sharing::Shared
                && ref_is_pe_specific(epoch, cr)
                && cr.r.index.iter().all(|ix| {
                    ix.vars().count() <= 1
                        && !wrapper_vars.iter().any(|w| ix.uses(*w))
                })
        })
        .collect();
    let mut races = Vec::new();
    for (i, w1) in exact.iter().enumerate() {
        let s1: Vec<SectionSet> = (0..n_pes)
            .map(|pe| ref_section_for_pe(program, layout, epoch, w1, pe))
            .collect();
        for w2 in exact.iter().skip(i) {
            if w1.r.array != w2.r.array {
                continue;
            }
            let mut witness = None;
            #[allow(clippy::needless_range_loop)]
            'pairs: for p in 0..n_pes {
                if s1[p].is_empty() {
                    continue;
                }
                for q in 0..n_pes {
                    if p == q {
                        continue;
                    }
                    let s2 = ref_section_for_pe(program, layout, epoch, w2, q);
                    if s1[p].intersects(&s2) {
                        witness = Some((p, q));
                        break 'pairs;
                    }
                }
            }
            if let Some(pes) = witness {
                races.push(RaceObligation {
                    array: w1.r.array,
                    writes: (w1.r.id, w2.r.id),
                    pes,
                });
            }
        }
    }
    races
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::stale::analyze_stale;
    use ccdp_ir::ProgramBuilder;

    /// The verifier's obligation set must equal the production analysis'
    /// stale set, reason for reason (the N-version cross-check).
    #[test]
    fn obligations_agree_with_stale_analysis() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("x");
        let a = pb.shared("A", &[16, 16]);
        let b = pb.shared("B", &[16, 16]);
        pb.parallel_epoch("w", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.repeat(2, |rep| {
            rep.parallel_epoch("r", |e| {
                e.doall("j", 0, n - 1, |e, j| {
                    e.serial("i", 0, n - 1, |e, i| {
                        e.assign(b.at2(i, j), a.at2(j, i).rd() + b.at2(i, j).rd());
                    });
                });
            });
        });
        let p = pb.finish().unwrap();
        for pes in [1usize, 2, 4, 8] {
            let layout = Layout::new(&p, pes);
            let stale = analyze_stale(&p, &layout);
            let ob = coverage_obligations(&p, &layout);
            assert_eq!(ob.stale_refs(), stale.stale_refs(), "P={pes}");
            assert_eq!(ob.n_shared_reads, stale.n_shared_reads, "P={pes}");
            for rid in ob.stale_refs() {
                assert_eq!(ob.reason_of(rid), stale.stale[rid.index()], "P={pes}");
            }
        }
    }

    /// All PEs writing one element in a DOALL is a phase race.
    #[test]
    fn constant_write_in_doall_is_a_race() {
        let mut pb = ProgramBuilder::new("race");
        let a = pb.shared("A", &[16]);
        pb.parallel_epoch("racy", |e| {
            e.doall("i", 0, 15, |e, _i| {
                e.assign(a.at1(0), 1.0);
            });
        });
        let p = pb.finish().unwrap();
        let ob = coverage_obligations(&p, &Layout::new(&p, 4));
        assert_eq!(ob.n_races(), 1, "{ob:?}");
        // The same program with per-iteration writes is race-free.
        let mut pb2 = ProgramBuilder::new("ok");
        let a2 = pb2.shared("A", &[16]);
        pb2.parallel_epoch("fine", |e| {
            e.doall("i", 0, 15, |e, i| {
                e.assign(a2.at1(i), 1.0);
            });
        });
        let p2 = pb2.finish().unwrap();
        let ob2 = coverage_obligations(&p2, &Layout::new(&p2, 4));
        assert_eq!(ob2.n_races(), 0, "{ob2:?}");
    }

    /// Aligned block-diagonal writes do not alias across PEs even though
    /// each PE's bounding section is two-dimensional.
    #[test]
    fn diagonal_writes_are_not_a_race() {
        let mut pb = ProgramBuilder::new("diag");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("d", |e| {
            e.doall("i", 0, 15, |e, i| {
                e.assign(a.at2(i, i), 1.0);
            });
        });
        let p = pb.finish().unwrap();
        let ob = coverage_obligations(&p, &Layout::new(&p, 4));
        assert_eq!(ob.n_races(), 0, "{ob:?}");
    }
}
