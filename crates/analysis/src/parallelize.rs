//! Automatic DOALL detection — a miniature of the Polaris front end the
//! paper's methodology starts from ("we first parallelize the application
//! codes using the Polaris compiler", §5.2).
//!
//! For each *serial* epoch consisting of a perfect loop nest, the pass
//! searches outermost-first for a loop with no loop-carried dependences and
//! rewrites it to a static DOALL (leaving enclosing loops as the serial
//! wrapper — exactly the serial-outer/parallel-inner shape of TOMCATV's
//! loops 100/120). The dependence test is a conservative ZIV/strong-SIV
//! subset of the standard framework:
//!
//! * **strong SIV**: a subscript dimension `c·v + f(outer) + k` identical in
//!   both references (same `c ≠ 0`, same outer terms, same constant, no
//!   inner-loop variables) forces `v₁ = v₂` — the dependence is not
//!   loop-carried;
//! * **SIV non-integral**: with equal coefficient `c ≠ 0` of `v`, a
//!   constant difference not divisible by `c` admits no solution;
//! * **ZIV disjoint**: subscripts free of `v` and inner variables, with
//!   identical variable terms and a non-zero constant difference, can never
//!   touch the same element at all.
//!
//! A loop parallelizes iff every (write, read-or-write) pair on the same
//! array is safe by one of the two rules. Anything the test cannot prove is
//! (correctly) left serial.

use ccdp_ir::{
    collect_refs_in_stmts, Affine, ArrayId, ArrayRef, Epoch, EpochId, EpochKind, Loop, LoopId,
    LoopKind, Program, ProgramItem, RefAccess, Stmt, VarId,
};

/// One loop's verdict.
#[derive(Clone, Debug)]
pub struct LoopDecision {
    pub epoch: EpochId,
    pub loop_id: LoopId,
    pub var: VarId,
    pub parallelized: bool,
    /// Human-readable justification (the blocking pair when serial).
    pub reason: String,
}

/// The pass's summary.
#[derive(Clone, Debug, Default)]
pub struct ParallelizeReport {
    pub decisions: Vec<LoopDecision>,
    pub epochs_parallelized: usize,
}

/// Run the pass: returns the rewritten program and the report. Epochs that
/// are already parallel, or whose structure is not a perfect nest, are left
/// untouched.
pub fn auto_parallelize(program: &Program) -> (Program, ParallelizeReport) {
    let mut out = program.clone();
    let mut report = ParallelizeReport::default();
    let arrays = out.arrays.clone();
    rewrite_items(&mut out.items, &arrays, &mut report);
    let mut routines = std::mem::take(&mut out.routines);
    for r in &mut routines {
        rewrite_items(&mut r.items, &arrays, &mut report);
    }
    out.routines = routines;
    ccdp_ir::validate(&out).expect("auto-parallelized program must stay valid");
    (out, report)
}

fn rewrite_items(
    items: &mut [ProgramItem],
    arrays: &[ccdp_ir::ArrayDecl],
    report: &mut ParallelizeReport,
) {
    for item in items {
        match item {
            ProgramItem::Epoch(e) => try_convert_epoch(e, arrays, report),
            ProgramItem::Repeat { body, .. } => rewrite_items(body, arrays, report),
            ProgramItem::Call(_) => {}
        }
    }
}

/// Is the statement list exactly one loop? Returns it mutably.
fn single_loop(stmts: &mut [Stmt]) -> Option<&mut Loop> {
    match stmts {
        [Stmt::Loop(l)] => Some(l),
        _ => None,
    }
}

fn try_convert_epoch(
    e: &mut Epoch,
    arrays: &[ccdp_ir::ArrayDecl],
    report: &mut ParallelizeReport,
) {
    if e.kind != EpochKind::Parallel && e.kind != EpochKind::Serial {
        return;
    }
    if e.kind == EpochKind::Parallel {
        return; // already parallel
    }
    // Walk the perfect-nest chain outermost-first.
    let mut depth = 0usize;
    loop {
        // Re-borrow down to the current depth each round (no polonius).
        let mut cur: &mut Vec<Stmt> = &mut e.stmts;
        for _ in 0..depth {
            match single_loop(cur.as_mut_slice()) {
                Some(l) => cur = &mut l.body,
                None => return,
            }
        }
        let Some(l) = single_loop(cur.as_mut_slice()) else { return };
        let decision = analyze_loop(l, arrays);
        report.decisions.push(LoopDecision {
            epoch: e.id,
            loop_id: l.id,
            var: l.var,
            parallelized: decision.is_none(),
            reason: decision.clone().unwrap_or_else(|| "no loop-carried dependence".into()),
        });
        if decision.is_none() {
            l.kind = LoopKind::DoAllStatic;
            l.align = pick_alignment(l);
            e.kind = EpochKind::Parallel;
            report.epochs_parallelized += 1;
            return;
        }
        depth += 1;
        if depth > 8 {
            return;
        }
    }
}

/// `None` when the loop is provably DOALL; `Some(reason)` otherwise.
fn analyze_loop(l: &Loop, arrays: &[ccdp_ir::ArrayDecl]) -> Option<String> {
    let v = l.var;
    // Variables of loops nested inside `l` vary between instances.
    let mut inner: Vec<VarId> = Vec::new();
    ccdp_ir::for_each_stmt(&l.body, &mut |s| {
        if let Stmt::Loop(il) = s {
            inner.push(il.var);
        }
    });
    let refs = collect_refs_in_stmts(&l.body);
    for w in refs.iter().filter(|r| r.access == RefAccess::Write) {
        for r in &refs {
            if r.r.array != w.r.array {
                continue;
            }
            if r.r.id == w.r.id && r.access == RefAccess::Read {
                unreachable!("write id cannot be a read");
            }
            // Note: a write IS tested against itself — two iterations
            // writing the same element is a carried output dependence.
            if !pair_safe(&w.r, &r.r, v, &inner) {
                return Some(format!(
                    "carried dependence between r{} and r{} on array {}",
                    w.r.id.0,
                    r.r.id.0,
                    arrays[w.r.array.index()].name
                ));
            }
        }
    }
    None
}

/// Can the pair provably never conflict across distinct iterations of `v`?
fn pair_safe(a: &ArrayRef, b: &ArrayRef, v: VarId, inner: &[VarId]) -> bool {
    for d in 0..a.index.len() {
        let (ea, eb) = (&a.index[d], &b.index[d]);
        if uses_any(ea, inner) || uses_any(eb, inner) {
            continue; // this dimension can't prove anything
        }
        let Some(delta) = ea.uniform_difference(eb) else {
            continue; // different variable terms: inconclusive here
        };
        let c = ea.coeff(v); // equal to eb's coefficient (uniform)
        if c == 0 {
            if delta != 0 {
                return true; // ZIV: provably disjoint elements
            }
            continue; // same element every iteration: inconclusive here
        }
        // SIV: equality requires c·(v₁ − v₂) = −delta.
        if delta == 0 {
            return true; // strong SIV, distance 0: not loop-carried
        }
        if delta % c != 0 {
            return true; // non-integral distance: no solution
        }
        // Integral non-zero distance: a genuine carried dependence in this
        // dimension; other dimensions may still prove disjointness.
    }
    false
}

fn uses_any(e: &Affine, vars: &[VarId]) -> bool {
    e.vars().any(|ev| vars.contains(&ev))
}

/// CRAFT-style template alignment: if some written array's *last* dimension
/// is subscripted exactly by the loop variable, align the DOALL to it.
fn pick_alignment(l: &Loop) -> Option<ArrayId> {
    let refs = collect_refs_in_stmts(&l.body);
    for w in refs.iter().filter(|r| r.access == RefAccess::Write) {
        let last = w.r.index.last()?;
        if last.coeff(l.var) == 1
            && last.constant_term() == 0
            && last.terms().len() == 1
        {
            return Some(w.r.array);
        }
    }
    None
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    /// Serial MXM: the middle (column) loop must parallelize.
    fn serial_mxm(n: usize) -> Program {
        let n_ = n as i64;
        let mut pb = ProgramBuilder::new("serial-mxm");
        let a = pb.shared("A", &[n, n]);
        let b = pb.shared("B", &[n, n]);
        let c = pb.shared("C", &[n, n]);
        pb.serial_epoch("init", |e| {
            e.serial("j0", 0, n_ - 1, |e, j| {
                e.serial("i0", 0, n_ - 1, |e, i| {
                    e.assign(a.at2(i, j), i.val() * 0.01 + 1.0);
                    e.assign(b.at2(i, j), j.val() * 0.01 + 2.0);
                    e.assign(c.at2(i, j), 0.0);
                });
            });
        });
        pb.serial_epoch("mult", |e| {
            e.serial("j", 0, n_ - 1, |e, j| {
                e.serial("k", 0, n_ - 1, |e, k| {
                    e.serial("i", 0, n_ - 1, |e, i| {
                        e.assign(
                            c.at2(i, j),
                            c.at2(i, j).rd() + a.at2(i, k).rd() * b.at2(k, j).rd(),
                        );
                    });
                });
            });
        });
        pb.finish().unwrap()
    }

    #[test]
    fn mxm_outer_loops_parallelize() {
        let p = serial_mxm(12);
        let (tp, rep) = auto_parallelize(&p);
        assert_eq!(rep.epochs_parallelized, 2);
        // Both epochs become parallel at the outermost (j) level.
        for e in tp.epochs() {
            assert_eq!(e.kind, EpochKind::Parallel, "{}", e.label);
            let (wrappers, d) = ccdp_ir::find_doall(&e.stmts).unwrap();
            assert!(wrappers.is_empty(), "outermost loop parallelizes");
            assert!(d.align.is_some(), "aligned to the written array");
        }
        // Results identical to the serial original.
        let layout1 = ccdp_dist::Layout::new(&p, 1);
        let r_serial = t3d_sim::Simulator::new(
            &p,
            layout1,
            t3d_sim::MachineConfig::t3d(1),
            t3d_sim::Scheme::Sequential,
            t3d_sim::SimOptions::default(),
        )
        .run();
        let layout4 = ccdp_dist::Layout::new(&tp, 4);
        let r_par = t3d_sim::Simulator::new(
            &tp,
            layout4,
            t3d_sim::MachineConfig::t3d(4),
            t3d_sim::Scheme::Base,
            t3d_sim::SimOptions::default(),
        )
        .run();
        let cid = p.array_by_name("C").unwrap().id;
        assert_eq!(
            r_serial.array_values(&p, cid),
            r_par.array_values(&tp, cid)
        );
    }

    /// A column sweep with a j-carried recurrence: outer j stays serial,
    /// inner i parallelizes — the TOMCATV loop-100 shape.
    #[test]
    fn sweep_parallelizes_inner_loop_only() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("sweep");
        let a = pb.shared("A", &[16, 16]);
        pb.serial_epoch("sweep", |e| {
            e.serial("j", 1, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j - 1).rd() * 0.5 + 1.0);
                });
            });
        });
        let p = pb.finish().unwrap();
        let (tp, rep) = auto_parallelize(&p);
        assert_eq!(rep.epochs_parallelized, 1);
        assert_eq!(rep.decisions.len(), 2);
        assert!(!rep.decisions[0].parallelized, "outer j is carried");
        assert!(rep.decisions[0].reason.contains("carried dependence"));
        assert!(rep.decisions[1].parallelized, "inner i is free");
        let e = &tp.epochs()[0];
        assert_eq!(e.kind, EpochKind::Parallel);
        let (wrappers, d) = ccdp_ir::find_doall(&e.stmts).unwrap();
        assert_eq!(wrappers.len(), 1, "serial wrapper over the DOALL");
        assert_eq!(d.kind, LoopKind::DoAllStatic);
    }

    /// A loop-invariant write is a carried output dependence.
    #[test]
    fn invariant_write_stays_serial() {
        let mut pb = ProgramBuilder::new("inv");
        let a = pb.shared("A", &[16]);
        pb.serial_epoch("last", |e| {
            e.serial("i", 0, 15, |e, i| {
                e.assign(a.at1(0), i.val());
            });
        });
        let p = pb.finish().unwrap();
        let (tp, rep) = auto_parallelize(&p);
        assert!(!rep.decisions[0].parallelized, "{:?}", rep.decisions[0]);
        assert_eq!(tp.epochs()[0].kind, EpochKind::Serial);
    }

    /// A genuine reduction into one cell must stay fully serial.
    #[test]
    fn reduction_stays_serial() {
        let mut pb = ProgramBuilder::new("red");
        let a = pb.shared("A", &[16]);
        let s = pb.shared("S", &[1]);
        pb.serial_epoch("sum", |e| {
            e.serial("i", 0, 15, |e, i| {
                e.assign(s.at1(0), s.at1(0).rd() + a.at1(i).rd());
            });
        });
        let p = pb.finish().unwrap();
        let (tp, rep) = auto_parallelize(&p);
        assert_eq!(rep.epochs_parallelized, 0);
        assert!(rep.decisions.iter().all(|d| !d.parallelized));
        assert_eq!(tp.epochs()[0].kind, EpochKind::Serial);
    }

    /// Writes shifted by a constant along the loop dimension are carried.
    #[test]
    fn shifted_write_blocks_parallelization() {
        let mut pb = ProgramBuilder::new("shift");
        let a = pb.shared("A", &[32]);
        pb.serial_epoch("prop", |e| {
            e.serial("i", 0, 30, |e, i| {
                e.assign(a.at1(i + 1), a.at1(i).rd() * 0.5);
            });
        });
        let p = pb.finish().unwrap();
        let (_, rep) = auto_parallelize(&p);
        assert!(!rep.decisions[0].parallelized);
    }

    /// ZIV: statically distinct elements never conflict, even without the
    /// loop variable in the subscript.
    #[test]
    fn ziv_disjoint_columns_parallelize() {
        let n = 8i64;
        let mut pb = ProgramBuilder::new("ziv");
        let a = pb.shared("A", &[8, 8]);
        pb.serial_epoch("copycol", |e| {
            e.serial("i", 0, n - 1, |e, i| {
                e.assign(a.at2(i, 3), a.at2(i, 5).rd() + 1.0);
            });
        });
        let p = pb.finish().unwrap();
        let (tp, rep) = auto_parallelize(&p);
        assert!(rep.decisions[0].parallelized, "{:?}", rep.decisions[0]);
        assert_eq!(tp.epochs()[0].kind, EpochKind::Parallel);
    }

    /// End to end: auto-parallelize, then run the CCDP pipeline on top.
    #[test]
    fn parallelized_program_flows_through_ccdp() {
        let p = serial_mxm(16);
        let (tp, _) = auto_parallelize(&p);
        let layout = ccdp_dist::Layout::new(&tp, 4);
        let stale = crate::analyze_stale(&tp, &layout);
        assert!(stale.n_stale() >= 1, "A(i,k) must be stale after parallelization");
    }
}
