//! Stale reference analysis (paper §4.1, after Choi–Yew).
//!
//! A read reference is **potentially stale** when some dynamic instance of it
//! may observe a cached copy that a *different* PE has overwritten in main
//! memory since the reader could have cached it. The compile-time
//! classification here is the conservative epoch data-flow:
//!
//! * walk the epoch schedule in order, accumulating per `(array, pe)` the
//!   *foreign-dirty* set `F[a][p]` — elements possibly written by some PE
//!   other than `p` so far;
//! * a shared read `r` executed by PE `p` is potentially stale iff its may-
//!   read section for `p` intersects `F[a][p]` at that point;
//! * epochs inside a `Repeat` are processed twice, so writes from later
//!   epochs of the body reach reads of earlier epochs (the loop-carried
//!   back-edge);
//! * an epoch whose DOALL sits under serial *wrapper* loops executes in many
//!   barrier-separated phases; its own writes are folded into `F` **before**
//!   classifying its reads (cross-phase dependences within the epoch, e.g.
//!   TOMCATV's loops 100/120). Single-phase DOALLs are independent by
//!   definition, so their reads are classified against the pre-epoch state.
//!
//! The result errs only toward `stale` (performance, never correctness); the
//! simulator's coherence oracle cross-checks this claim in the test suite.

use ccdp_dist::Layout;
use ccdp_ir::{
    find_doall, EpochKind, Program, RefAccess, RefId, Sharing,
};
use ccdp_sections::SectionSet;

use crate::access::{epoch_access_sections, ref_is_pe_specific, ref_section_for_pe};

/// Why a read was classified potentially stale (diagnostics / reports).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StaleReason {
    /// Overlaps data a (possibly) different PE wrote in an earlier epoch.
    ForeignWriteEarlierEpoch,
    /// Overlaps data written in the same multi-phase epoch (cross-phase).
    CrossPhaseSameEpoch,
    /// The reference or a conflicting write could not be analyzed precisely
    /// (dynamic scheduling, unknown mapping) — conservative.
    Conservative,
}

/// Classification of every read reference in a program.
#[derive(Clone, Debug)]
pub struct StaleAnalysis {
    /// Indexed by `RefId`. `None` for writes, prefetches, private-array
    /// reads, and reads proven clean; `Some(reason)` for potentially-stale
    /// shared reads.
    pub stale: Vec<Option<StaleReason>>,
    /// Total shared read references seen.
    pub n_shared_reads: usize,
}

impl StaleAnalysis {
    pub fn is_stale(&self, r: RefId) -> bool {
        self.stale
            .get(r.index())
            .is_some_and(|s| s.is_some())
    }

    /// All potentially-stale read reference ids — the input set `P` of the
    /// paper's prefetch target analysis (Fig. 1).
    pub fn stale_refs(&self) -> Vec<RefId> {
        self.stale
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| RefId(i as u32)))
            .collect()
    }

    pub fn n_stale(&self) -> usize {
        self.stale.iter().filter(|s| s.is_some()).count()
    }
}

/// Run the analysis.
pub fn analyze_stale(program: &Program, layout: &Layout) -> StaleAnalysis {
    let n_pes = layout.n_pes();
    let n_refs = program.n_refs as usize;
    let mut stale: Vec<Option<StaleReason>> = vec![None; n_refs];
    let mut n_shared_reads = 0usize;

    // With a single PE there is no "different processor": every read is
    // clean regardless of scheduling (the dynamic-DOALL conservatism below
    // would otherwise flag references spuriously).
    if n_pes == 1 {
        let mut seen = std::collections::HashSet::new();
        for e in program.epochs() {
            if !seen.insert(e.id) {
                continue;
            }
            for cr in ccdp_ir::collect_refs_in_stmts(&e.stmts) {
                if cr.access == RefAccess::Read
                    && program.array(cr.r.array).sharing == Sharing::Shared
                {
                    n_shared_reads += 1;
                }
            }
        }
        return StaleAnalysis { stale, n_shared_reads };
    }

    // F[array][pe]: foreign-dirty sets.
    let mut foreign: Vec<Vec<SectionSet>> = program
        .arrays
        .iter()
        .map(|a| vec![SectionSet::bottom(a.rank()); n_pes])
        .collect();

    let schedule = program.static_schedule();
    let any_repeat = schedule.iter().any(|s| s.in_repeat);
    let passes = if any_repeat { 2 } else { 1 };

    for pass in 0..passes {
        for sched in &schedule {
            let epoch = sched.epoch;
            let acc = epoch_access_sections(program, layout, epoch);
            let multi_phase = epoch.kind == EpochKind::Parallel
                && find_doall(&epoch.stmts).is_some_and(|(w, _)| !w.is_empty());

            // For multi-phase epochs the epoch's own writes can make its own
            // reads stale (cross-phase). Fold writes in first.
            if multi_phase {
                fold_writes(program, layout, &acc, &mut foreign);
            }

            // Classify reads of shared arrays.
            for cr in &acc.refs {
                if cr.access != RefAccess::Read {
                    continue;
                }
                let decl = program.array(cr.r.array);
                if decl.sharing != Sharing::Shared {
                    continue;
                }
                if pass == 0 {
                    n_shared_reads += 1;
                }
                let idx = cr.r.id.index();
                if stale[idx].is_some() {
                    continue; // already stale; staleness is monotone
                }
                let pe_specific = ref_is_pe_specific(epoch, cr);
                let mut found = None;
                #[allow(clippy::needless_range_loop)]
                for pe in 0..n_pes {
                    let rs = ref_section_for_pe(program, layout, epoch, cr, pe);
                    if rs.is_empty() {
                        continue;
                    }
                    if foreign[cr.r.array.index()][pe].intersects(&rs) {
                        found = Some(if !pe_specific {
                            StaleReason::Conservative
                        } else if multi_phase {
                            StaleReason::CrossPhaseSameEpoch
                        } else {
                            StaleReason::ForeignWriteEarlierEpoch
                        });
                        break;
                    }
                }
                stale[idx] = found;
            }

            if !multi_phase {
                fold_writes(program, layout, &acc, &mut foreign);
            }
        }
    }

    StaleAnalysis { stale, n_shared_reads }
}

/// Merge an epoch's writes into the foreign-dirty sets: a write executed by
/// PE `q` dirties the element for every other PE. When the write's PE mapping
/// is unknown, it dirties the element for everyone.
fn fold_writes(
    program: &Program,
    layout: &Layout,
    acc: &crate::access::EpochAccess,
    foreign: &mut [Vec<SectionSet>],
) {
    let n_pes = layout.n_pes();
    for (ai, per_pe) in acc.writes.iter().enumerate() {
        if program.arrays[ai].sharing != Sharing::Shared {
            continue;
        }
        if !acc.writes_pe_specific[ai] {
            // Unknown writer: dirty for every reader.
            let mut all = SectionSet::bottom(program.arrays[ai].rank());
            for w in per_pe {
                all.union_with(w);
            }
            for f in foreign[ai].iter_mut().take(n_pes) {
                f.union_with(&all);
            }
            continue;
        }
        // Writer q dirties for p != q. O(P^2) unions of small sets.
        for (q, wq) in per_pe.iter().enumerate().take(n_pes) {
            if wq.is_empty() {
                continue;
            }
            for (p, f) in foreign[ai].iter_mut().enumerate() {
                if p != q {
                    f.union_with(wq);
                }
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::{ProgramBuilder, RefAccess};

    /// Collect read RefIds of a named array in schedule order.
    fn reads_of(p: &Program, name: &str) -> Vec<RefId> {
        let aid = p.array_by_name(name).unwrap().id;
        let mut out = Vec::new();
        for e in p.epochs() {
            for cr in ccdp_ir::collect_refs_in_stmts(&e.stmts) {
                if cr.access == RefAccess::Read && cr.r.array == aid {
                    out.push(cr.r.id);
                }
            }
        }
        out
    }

    /// Epoch 1 writes A block-aligned; epoch 2 reads A with the same
    /// alignment → clean (owner-computes). Reading neighbours → stale.
    #[test]
    fn aligned_reads_clean_neighbour_reads_stale() {
        let n = 16usize;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[n, n]);
        let b = pb.shared("B", &[n, n]);
        pb.parallel_epoch("w", |e| {
            e.doall("j", 0, n as i64 - 1, |e, j| {
                e.serial("i", 0, n as i64 - 1, |e, i| {
                    e.assign(a.at2(i, j), 1.0);
                });
            });
        });
        pb.parallel_epoch("r", |e| {
            e.doall("j", 0, n as i64 - 1, |e, j| {
                e.serial("i", 0, n as i64 - 1, |e, i| {
                    // aligned read A(i,j) clean; transposed A(j,i) stale.
                    e.assign(b.at2(i, j), a.at2(i, j).rd() + a.at2(j, i).rd());
                });
            });
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 4);
        let res = analyze_stale(&p, &layout);
        let reads = reads_of(&p, "A");
        assert_eq!(reads.len(), 2);
        assert!(
            !res.is_stale(reads[0]),
            "aligned read must be clean: {:?}",
            res.stale[reads[0].index()]
        );
        assert!(res.is_stale(reads[1]), "neighbour read must be stale");
    }

    /// With one PE nothing is ever foreign.
    #[test]
    fn single_pe_never_stale() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[8, 8]);
        pb.parallel_epoch("w", |e| {
            e.doall("j", 0, 7, |e, j| {
                e.serial("i", 0, 7, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.parallel_epoch("r", |e| {
            e.doall("j", 0, 7, |e, j| {
                e.serial("i", 0, 7, |e, i| {
                    e.assign(a.at2(i, j), a.at2(7 - i, 7 - j).rd());
                });
            });
        });
        let p = pb.finish().unwrap();
        let res = analyze_stale(&p, &Layout::new(&p, 1));
        assert_eq!(res.n_stale(), 0);
        let res4 = analyze_stale(&p, &Layout::new(&p, 4));
        assert!(res4.n_stale() > 0, "transposed read must be stale at P=4");
    }

    /// Serial epoch writes (PE0), parallel epoch reads → stale for PEs != 0,
    /// hence potentially stale overall.
    #[test]
    fn serial_write_then_parallel_read_is_stale() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16]);
        let b = pb.shared("B", &[16]);
        pb.serial_epoch("w", |e| {
            e.serial("i", 0, 15, |e, i| e.assign(a.at1(i), 2.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 15, |e, i| {
                e.assign(b.at1(i), a.at1(i).rd());
            });
        });
        let p = pb.finish().unwrap();
        let res = analyze_stale(&p, &Layout::new(&p, 4));
        let reads = reads_of(&p, "A");
        assert!(res.is_stale(reads[0]));
    }

    /// Reads before any write are clean.
    #[test]
    fn read_before_any_write_is_clean() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16]);
        let b = pb.shared("B", &[16]);
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 15, |e, i| {
                e.assign(b.at1(i), a.at1(15 - i).rd());
            });
        });
        let p = pb.finish().unwrap();
        let res = analyze_stale(&p, &Layout::new(&p, 8));
        assert_eq!(res.n_stale(), 0);
    }

    /// Loop-carried staleness through Repeat: the read textually precedes
    /// the write, but the repeat back-edge makes it stale on iterations > 1.
    #[test]
    fn repeat_back_edge_makes_earlier_read_stale() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16]);
        let b = pb.shared("B", &[16]);
        pb.repeat(3, |rep| {
            rep.parallel_epoch("r", |e| {
                e.doall("i", 1, 14, |e, i| {
                    e.assign(b.at1(i), a.at1(i + 1).rd());
                });
            });
            rep.parallel_epoch("w", |e| {
                e.doall("i", 0, 15, |e, i| {
                    e.assign(a.at1(i), b.at1(i).rd() * 0.5);
                });
            });
        });
        let p = pb.finish().unwrap();
        let res = analyze_stale(&p, &Layout::new(&p, 4));
        let reads = reads_of(&p, "A");
        assert!(
            res.is_stale(reads[0]),
            "A(i+1) read must be stale via the repeat back-edge"
        );
        // Without the repeat it is clean.
        let mut pb2 = ProgramBuilder::new("t2");
        let a2 = pb2.shared("A", &[16]);
        let b2 = pb2.shared("B", &[16]);
        pb2.parallel_epoch("r", |e| {
            e.doall("i", 1, 14, |e, i| {
                e.assign(b2.at1(i), a2.at1(i + 1).rd());
            });
        });
        pb2.parallel_epoch("w", |e| {
            e.doall("i", 0, 15, |e, i| {
                e.assign(a2.at1(i), b2.at1(i).rd() * 0.5);
            });
        });
        let p2 = pb2.finish().unwrap();
        let res2 = analyze_stale(&p2, &Layout::new(&p2, 4));
        let reads2 = reads_of(&p2, "A");
        assert!(!res2.is_stale(reads2[0]));
    }

    /// Cross-phase staleness inside one multi-phase epoch (serial wrapper
    /// over a DOALL): read of the previous wrapper iteration's column.
    #[test]
    fn multi_phase_epoch_cross_phase_stale() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("sweep", |e| {
            e.serial("j", 1, n - 1, |e, j| {
                e.doall("i", 1, n - 1, |e, i| {
                    // reads the previous phase's value of the *previous row*,
                    // which belongs to the neighbouring PE's block
                    e.assign(a.at2(i, j), a.at2(i - 1, j - 1).rd() * 0.5);
                });
            });
        });
        let p = pb.finish().unwrap();
        let res = analyze_stale(&p, &Layout::new(&p, 4));
        let reads = reads_of(&p, "A");
        assert!(res.is_stale(reads[0]), "cross-phase read must be stale");
        assert_eq!(
            res.stale[reads[0].index()],
            Some(StaleReason::CrossPhaseSameEpoch)
        );
    }

    /// Dynamic scheduling forces conservative classification even for
    /// aligned subscripts.
    #[test]
    fn dynamic_schedule_is_conservative() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16]);
        let b = pb.shared("B", &[16]);
        pb.parallel_epoch("w", |e| {
            e.doall_dynamic("i", 0, 15, 2, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 15, |e, i| {
                e.assign(b.at1(i), a.at1(i).rd());
            });
        });
        let p = pb.finish().unwrap();
        let res = analyze_stale(&p, &Layout::new(&p, 4));
        let reads = reads_of(&p, "A");
        assert!(res.is_stale(reads[0]));
    }

    /// Private arrays are never stale.
    #[test]
    fn private_arrays_never_stale() {
        let mut pb = ProgramBuilder::new("t");
        let t = pb.private("T", &[16]);
        let a = pb.shared("A", &[16]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 15, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 15, |e, i| {
                e.assign(a.at1(i), t.at1(i).rd());
            });
        });
        let p = pb.finish().unwrap();
        let res = analyze_stale(&p, &Layout::new(&p, 4));
        assert_eq!(res.n_stale(), 0);
        assert_eq!(res.n_shared_reads, 0);
    }
}
