//! Locality analysis: uniformly generated reference groups and group-spatial
//! locality (paper §4.2).
//!
//! Two references are *uniformly generated* when they reference the same
//! array with subscripts whose variable parts are identical — they differ
//! only in constant terms. Within such a group, references whose addresses
//! land on the same cache line exhibit **group-spatial** locality, and only
//! the *leading reference* needs a prefetch; the rest ride along on its line
//! fill.
//!
//! The leading reference is the one that touches each new cache line first
//! as the innermost loop advances: the largest constant offset along the
//! contiguous dimension when the traversal is ascending, the smallest when
//! descending.

use ccdp_ir::{CollectedRef, LoopId, Program, RefAccess, RefId};

/// One group of uniformly generated (potentially-stale) read references in
/// the same innermost loop.
#[derive(Clone, Debug)]
pub struct UniformGroup {
    pub array: ccdp_ir::ArrayId,
    pub loop_id: LoopId,
    /// Members sorted by contiguous-dimension constant offset (ascending).
    pub members: Vec<RefId>,
    /// Constant offsets along the contiguous (fastest-varying) dimension,
    /// parallel to `members`.
    pub dim0_offsets: Vec<i64>,
}

/// A group found to have group-spatial locality with a chosen leader.
#[derive(Clone, Debug)]
pub struct GroupSpatial {
    pub group: UniformGroup,
    /// The reference to prefetch.
    pub leader: RefId,
    /// References that ride on the leader's line fills and can be issued as
    /// normal reads (paper Fig. 1's eliminated non-leading references).
    pub followers: Vec<RefId>,
}

/// Partition a set of candidate references (already filtered to
/// potentially-stale reads in innermost loops) into uniformly generated
/// groups per (array, innermost loop).
pub fn find_uniform_groups(
    candidates: &[&CollectedRef],
) -> Vec<UniformGroup> {
    let mut groups: Vec<(Vec<usize>, &CollectedRef)> = Vec::new();
    'cand: for (ci, cr) in candidates.iter().enumerate() {
        debug_assert_eq!(cr.access, RefAccess::Read);
        let Some(encl) = cr.enclosing_loop() else { continue };
        for (idxs, repr) in groups.iter_mut() {
            let r = *repr;
            if r.r.array != cr.r.array {
                continue;
            }
            if r.enclosing_loop().map(|l| l.id) != Some(encl.id) {
                continue;
            }
            if r.r.index.len() != cr.r.index.len() {
                continue;
            }
            // Uniformly generated: every dim differs only in the constant.
            let uniform = r
                .r
                .index
                .iter()
                .zip(&cr.r.index)
                .all(|(a, b)| a.uniform_difference(b).is_some());
            if uniform {
                idxs.push(ci);
                continue 'cand;
            }
        }
        groups.push((vec![ci], cr));
    }

    groups
        .into_iter()
        .map(|(idxs, repr)| {
            let mut pairs: Vec<(i64, RefId)> = idxs
                .iter()
                .map(|&ci| {
                    let cr = candidates[ci];
                    (cr.r.index[0].constant_term(), cr.r.id)
                })
                .collect();
            pairs.sort_unstable();
            UniformGroup {
                array: repr.r.array,
                loop_id: repr.enclosing_loop().unwrap().id,
                dim0_offsets: pairs.iter().map(|&(o, _)| o).collect(),
                members: pairs.iter().map(|&(_, r)| r).collect(),
            }
        })
        .collect()
}

/// Decide group-spatial locality for one group and pick the leader.
///
/// Requirements (paper §4.2, made precise):
/// * subscripts in dimensions other than the contiguous one must have equal
///   constants (already implied by sorting on dim-0 only if higher dims
///   differ the address gap is a whole column — checked here);
/// * the dim-0 constant spread must be smaller than the cache line
///   (`line_words` elements), so members share lines as the loop advances;
/// * all members must traverse dim 0 in the same direction (same sign of the
///   innermost-variable coefficient — guaranteed by uniform generation);
/// * the loop must actually advance along dim 0 (the innermost loop variable
///   appears in dim 0); otherwise the group has group-temporal, not
///   group-spatial, locality, and we conservatively decline.
///
/// Leader: last member in traversal direction (max offset ascending, min
/// offset descending) — the first to touch each new line.
pub fn group_spatial(
    program: &Program,
    candidates: &[&CollectedRef],
    group: &UniformGroup,
    line_words: usize,
) -> Option<GroupSpatial> {
    if group.members.len() < 2 {
        return None;
    }
    let member_refs: Vec<&CollectedRef> = group
        .members
        .iter()
        .map(|rid| {
            *candidates
                .iter()
                .find(|cr| cr.r.id == *rid)
                .expect("group member must be a candidate")
        })
        .collect();

    // Non-contiguous dims must have identical constants.
    let first = member_refs[0];
    for m in &member_refs[1..] {
        for d in 1..first.r.index.len() {
            if first.r.index[d].uniform_difference(&m.r.index[d]) != Some(0) {
                return None;
            }
        }
    }

    // Spread along dim 0 must fit in one line.
    let spread = group.dim0_offsets.last().unwrap() - group.dim0_offsets.first().unwrap();
    if spread < 0 || spread as usize >= line_words {
        return None;
    }

    // Traversal direction along dim 0 by the innermost loop variable.
    let inner_var = first.enclosing_loop()?.var;
    let coeff = first.r.index[0].coeff(inner_var);
    if coeff == 0 {
        return None; // loop does not advance along the contiguous dim
    }
    let _ = program; // alignment is guaranteed: arrays start at line starts

    let (leader_pos, _) = if coeff > 0 {
        (group.members.len() - 1, ())
    } else {
        (0, ())
    };
    let leader = group.members[leader_pos];
    let followers = group
        .members
        .iter()
        .copied()
        .filter(|&m| m != leader)
        .collect();
    Some(GroupSpatial { group: group.clone(), leader, followers })
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_dist::Layout;
    use ccdp_ir::{collect_refs_in_stmts, ProgramBuilder, Program};

    /// Stencil reads A(i-1,j), A(i,j), A(i+1,j) in one inner loop.
    fn stencil() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[64, 64]);
        let b = pb.shared("B", &[64, 64]);
        pb.parallel_epoch("w", |e| {
            e.doall("j", 0, 63, |e, j| {
                e.serial("i", 0, 63, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.parallel_epoch("r", |e| {
            e.doall("j", 0, 63, |e, j| {
                e.serial("i", 1, 62, |e, i| {
                    e.assign(
                        b.at2(i, j),
                        a.at2(i - 1, j).rd() + a.at2(i, j).rd() + a.at2(i + 1, j).rd(),
                    );
                });
            });
        });
        pb.finish().unwrap()
    }

    fn stale_read_candidates(p: &Program) -> Vec<ccdp_ir::CollectedRef> {
        let layout = Layout::new(p, 4);
        let st = crate::analyze_stale(p, &layout);
        let mut out = Vec::new();
        for e in p.epochs() {
            for cr in collect_refs_in_stmts(&e.stmts) {
                if cr.access == ccdp_ir::RefAccess::Read && st.is_stale(cr.r.id) {
                    out.push(cr);
                }
            }
        }
        out
    }

    #[test]
    fn stencil_forms_one_group_with_max_offset_leader() {
        let p = stencil();
        let cands_owned = stale_read_candidates(&p);
        let cands: Vec<&ccdp_ir::CollectedRef> = cands_owned.iter().collect();
        // All three loads of A are stale at P=4 (row-stencil vs column dist?
        // no: column dist, row stencil within same column is same PE — use
        // whatever the analysis says; the grouping is what's under test).
        let groups = find_uniform_groups(&cands);
        if cands.is_empty() {
            // Stencil along rows of a column-distributed array is local;
            // grouping still must work on plain (non-stale) reads.
            return;
        }
        assert_eq!(groups.len(), 1, "{groups:?}");
        let g = &groups[0];
        assert_eq!(g.members.len(), cands.len());
        assert!(g.dim0_offsets.windows(2).all(|w| w[0] <= w[1]));
        let gs = group_spatial(&p, &cands, g, 4).expect("spread 2 < line 4");
        // Ascending traversal: leader is the +1 offset.
        let leader_cr = cands.iter().find(|c| c.r.id == gs.leader).unwrap();
        assert_eq!(leader_cr.r.index[0].constant_term(), 1);
        assert_eq!(gs.followers.len(), cands.len() - 1);
    }

    #[test]
    fn grouping_splits_on_spread_wider_than_line() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[64]);
        let b = pb.shared("B", &[64]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 63, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 55, |e, i| {
                e.assign(b.at1(i), a.at1(i).rd() + a.at1(i + 8).rd());
            });
        });
        let p = pb.finish().unwrap();
        let cands_owned = stale_read_candidates(&p);
        let cands: Vec<&ccdp_ir::CollectedRef> = cands_owned.iter().collect();
        assert_eq!(cands.len(), 2, "both reads stale (misaligned blocks)");
        let groups = find_uniform_groups(&cands);
        assert_eq!(groups.len(), 1);
        assert!(
            group_spatial(&p, &cands, &groups[0], 4).is_none(),
            "offset 8 exceeds a 4-word line"
        );
    }

    #[test]
    fn different_column_offsets_are_not_group_spatial() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        let b = pb.shared("B", &[16, 16]);
        pb.parallel_epoch("w", |e| {
            e.doall("j", 0, 15, |e, j| {
                e.serial("i", 0, 15, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.parallel_epoch("r", |e| {
            e.doall("j", 0, 15, |e, j| {
                e.serial("i", 0, 15, |e, i| {
                    // reversed column traversal: both reads are foreign
                    // (stale), uniformly generated with each other, but they
                    // touch different columns -> not group-spatial.
                    e.assign(b.at2(i, j), a.at2(i, 15 - j).rd() + a.at2(i, 14 - j).rd());
                });
            });
        });
        let p = pb.finish().unwrap();
        let cands_owned = stale_read_candidates(&p);
        let cands: Vec<&ccdp_ir::CollectedRef> = cands_owned.iter().collect();
        assert_eq!(cands.len(), 2);
        let groups = find_uniform_groups(&cands);
        assert_eq!(groups.len(), 1, "uniformly generated (same var parts)");
        assert!(
            group_spatial(&p, &cands, &groups[0], 4).is_none(),
            "columns 15-j and 14-j are different lines"
        );
    }

    #[test]
    fn descending_traversal_picks_min_offset_leader() {
        // dim0 coefficient negative: A(15-i) and A(14-i).
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[32]);
        let b = pb.shared("B", &[32]);
        pb.parallel_epoch("w", |e| {
            e.doall("i", 0, 31, |e, i| e.assign(a.at1(i), 1.0));
        });
        pb.parallel_epoch("r", |e| {
            e.doall("i", 0, 14, |e, i| {
                e.assign(b.at1(i), a.at1(i * -1 + 15).rd() + a.at1(i * -1 + 14).rd());
            });
        });
        let p = pb.finish().unwrap();
        let cands_owned = stale_read_candidates(&p);
        let cands: Vec<&ccdp_ir::CollectedRef> = cands_owned.iter().collect();
        assert_eq!(cands.len(), 2);
        let groups = find_uniform_groups(&cands);
        let gs = group_spatial(&p, &cands, &groups[0], 4).unwrap();
        let leader_cr = cands.iter().find(|c| c.r.id == gs.leader).unwrap();
        assert_eq!(
            leader_cr.r.index[0].constant_term(),
            14,
            "descending: min offset leads"
        );
    }
}
