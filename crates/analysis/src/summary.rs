//! Interprocedural summaries (paper §4.1's third technique).
//!
//! A routine's summary is, per shared array, the union of all read and write
//! sections over *every* PE — the information a caller needs to reason about
//! a `Call` without re-walking the callee. The stale analysis itself inlines
//! calls (the schedule is flattened), so summaries are exposed for clients
//! (reports, the bench harness) and as a fidelity nod to the paper's use of
//! Choi's interprocedural framework.

use ccdp_dist::Layout;
use ccdp_ir::{Program, ProgramItem, RefAccess, Routine, Sharing};
use ccdp_sections::SectionSet;

use crate::access::epoch_access_sections;
use crate::access::ref_section_for_pe;

/// Per-array read/write sets of one routine (any PE).
#[derive(Clone, Debug)]
pub struct RoutineSummary {
    pub routine: String,
    /// Indexed by `ArrayId`.
    pub reads: Vec<SectionSet>,
    /// Indexed by `ArrayId`.
    pub writes: Vec<SectionSet>,
}

impl RoutineSummary {
    /// Does the routine possibly write array `a`?
    pub fn writes_array(&self, a: ccdp_ir::ArrayId) -> bool {
        !self.writes[a.index()].is_empty()
    }

    /// Does the routine possibly read array `a`?
    pub fn reads_array(&self, a: ccdp_ir::ArrayId) -> bool {
        !self.reads[a.index()].is_empty()
    }
}

/// Compute a routine's summary.
pub fn summarize_routine(
    program: &Program,
    layout: &Layout,
    routine: &Routine,
) -> RoutineSummary {
    let mut reads: Vec<SectionSet> = program
        .arrays
        .iter()
        .map(|a| SectionSet::bottom(a.rank()))
        .collect();
    let mut writes = reads.clone();
    summarize_items(program, layout, &routine.items, &mut reads, &mut writes);
    RoutineSummary { routine: routine.name.clone(), reads, writes }
}

fn summarize_items(
    program: &Program,
    layout: &Layout,
    items: &[ProgramItem],
    reads: &mut [SectionSet],
    writes: &mut [SectionSet],
) {
    for item in items {
        match item {
            ProgramItem::Epoch(e) => {
                let acc = epoch_access_sections(program, layout, e);
                for cr in &acc.refs {
                    if program.array(cr.r.array).sharing != Sharing::Shared {
                        continue;
                    }
                    let dst = match cr.access {
                        RefAccess::Read => &mut reads[cr.r.array.index()],
                        RefAccess::Write => &mut writes[cr.r.array.index()],
                    };
                    for pe in 0..layout.n_pes() {
                        dst.union_with(&ref_section_for_pe(program, layout, e, cr, pe));
                    }
                }
            }
            ProgramItem::Call(r) => {
                summarize_items(program, layout, &program.routine(*r).items, reads, writes);
            }
            ProgramItem::Repeat { body, .. } => {
                summarize_items(program, layout, body, reads, writes);
            }
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    #[test]
    fn summary_reports_reads_and_writes() {
        let mut pb = ProgramBuilder::new("t");
        let u = pb.shared("U", &[32, 32]);
        let v = pb.shared("V", &[32, 32]);
        let w = pb.shared("W", &[32, 32]);
        let calc = pb.routine("calc1", |rc| {
            rc.parallel_epoch("c", |e| {
                e.doall("j", 0, 31, |e, j| {
                    e.serial("i", 0, 30, |e, i| {
                        e.assign(w.at2(i, j), u.at2(i, j).rd() + u.at2(i + 1, j).rd());
                    });
                });
            });
        });
        pb.call(calc);
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 4);
        let s = summarize_routine(&p, &layout, &p.routines[0]);
        assert!(s.reads_array(u.id()));
        assert!(!s.reads_array(v.id()));
        assert!(!s.reads_array(w.id()));
        assert!(s.writes_array(w.id()));
        assert!(!s.writes_array(u.id()));
        // The whole written region is covered.
        let whole = ccdp_sections::Section::new(vec![
            ccdp_sections::Range::dense(0, 30),
            ccdp_sections::Range::dense(0, 31),
        ]);
        assert!(s.writes[w.id().index()].covers_section(&whole));
    }
}
