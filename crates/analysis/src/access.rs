//! Per-PE access sections: the bridge between the IR, the data/iteration
//! distribution, and the section algebra.

use ccdp_dist::{doall_range_for_pe, Layout};
use ccdp_ir::{
    collect_refs_in_stmts, Affine, ArrayId, CollectedRef, Epoch, EpochKind, LoopKind, Program,
    RefAccess, VarId,
};
use ccdp_sections::{Range, Section, SectionSet};

/// Value interval (with stride) a loop variable ranges over.
#[derive(Clone, Copy, Debug)]
struct VarInterval {
    var: VarId,
    lo: i64,
    hi: i64,
    step: i64,
}

/// Result of evaluating one reference's touch-set for one PE over a whole
/// epoch.
#[derive(Clone, Debug)]
pub struct PeSections {
    /// May-touch set for each PE (`sections[pe]`).
    pub sections: Vec<SectionSet>,
    /// False when the compiler cannot tell which PE executes which iteration
    /// (dynamic scheduling, non-constant DOALL bounds): then all entries are
    /// the same full touch-set and a write must be treated as possibly
    /// foreign for *every* reader.
    pub pe_specific: bool,
}

/// Interval bounds for every enclosing loop of a reference, restricted to
/// `pe`'s share of the DOALL. Returns `None` when the reference provably
/// never executes (empty loop or empty PE share), and sets `pe_specific` to
/// false when the DOALL's iteration→PE map is unknown at compile time.
fn loop_intervals(
    program: &Program,
    layout: &Layout,
    cr: &CollectedRef,
    pe: usize,
    n_pes: usize,
    pe_specific: &mut bool,
) -> Option<Vec<VarInterval>> {
    let mut ivs: Vec<VarInterval> = Vec::with_capacity(cr.loops.len());
    for l in &cr.loops {
        let bounds: Vec<(VarId, i64, i64)> =
            ivs.iter().map(|iv| (iv.var, iv.lo, iv.hi)).collect();
        let env = ccdp_ir::VarEnv::new(0);
        let (lo_min, lo_max) = l.lo.range_over(&env, &bounds);
        let (hi_min, hi_max) = l.hi.range_over(&env, &bounds);
        // The loop may be empty on every iteration of the outer loops.
        if hi_max < lo_min {
            return None;
        }
        let (mut lo, mut hi) = (lo_min, hi_max);
        match l.kind {
            LoopKind::Serial => {}
            LoopKind::DoAllStatic => {
                if let (Some(clo), Some(chi)) = (l.lo.as_constant(), l.hi.as_constant()) {
                    let range = match l.align {
                        Some(aid) => ccdp_dist::aligned_range_for_pe(
                            layout,
                            program.array(aid),
                            clo,
                            chi,
                            l.step,
                            pe,
                        ),
                        None => doall_range_for_pe(clo, chi, l.step, pe, n_pes),
                    };
                    match range {
                        Some(r) => {
                            lo = r.lo;
                            hi = r.hi;
                        }
                        None => return None,
                    }
                } else {
                    // Block bounds depend on outer iteration: the PE share is
                    // not a compile-time constant range. Keep the full range
                    // and drop PE specificity.
                    *pe_specific = false;
                }
            }
            LoopKind::DoAllDynamic { .. } => {
                *pe_specific = false;
            }
        }
        // Non-rectangular bound uncertainty (lo_max > lo_min etc.) only
        // widens the interval, which is the safe direction.
        let _ = (lo_max, hi_min);
        ivs.push(VarInterval { var: l.var, lo, hi, step: l.step });
    }
    Some(ivs)
}

/// Convert one affine subscript into a (conservative) [`Range`] given the
/// loop variable intervals. Exact for single-variable subscripts; bounding
/// dense range otherwise.
fn affine_to_range(a: &Affine, ivs: &[VarInterval]) -> Range {
    let vars: Vec<VarId> = a.vars().collect();
    match vars.len() {
        0 => Range::point(a.constant_term()),
        1 => {
            let v = vars[0];
            let c = a.coeff(v);
            let iv = ivs
                .iter()
                .find(|iv| iv.var == v)
                .expect("subscript variable must be an enclosing loop var");
            let k = a.constant_term();
            let (a0, a1) = (c * iv.lo + k, c * iv.hi + k);
            let stride = (c * iv.step).abs();
            Range::strided(a0.min(a1), a0.max(a1), stride.max(1))
        }
        _ => {
            let bounds: Vec<(VarId, i64, i64)> =
                ivs.iter().map(|iv| (iv.var, iv.lo, iv.hi)).collect();
            let env = ccdp_ir::VarEnv::new(0);
            let (lo, hi) = a.range_over(&env, &bounds);
            Range::dense(lo, hi)
        }
    }
}

/// The may-touch section of one reference for one PE over a whole epoch.
///
/// * Serial epochs execute on PE 0 only: other PEs get ⊥.
/// * In parallel epochs the DOALL variable is restricted to `pe`'s statically
///   scheduled share; serial wrapper and inner loops use their full ranges.
/// * Returns ⊤ only if a subscript cannot be bounded (should not happen for
///   validated programs — bounds are affine in enclosing vars).
pub fn ref_section_for_pe(
    program: &Program,
    layout: &Layout,
    epoch: &Epoch,
    cr: &CollectedRef,
    pe: usize,
) -> SectionSet {
    let rank = program.array(cr.r.array).rank();
    if epoch.kind == EpochKind::Serial && pe != 0 {
        return SectionSet::bottom(rank);
    }
    let mut pe_specific = true;
    let Some(ivs) =
        loop_intervals(program, layout, cr, pe, layout.n_pes(), &mut pe_specific)
    else {
        return SectionSet::bottom(rank);
    };
    let dims: Vec<Range> = cr.r.index.iter().map(|a| affine_to_range(a, &ivs)).collect();
    SectionSet::from_section(Section::new(dims))
}

/// Is the reference's iteration→PE mapping statically known?
pub fn ref_is_pe_specific(epoch: &Epoch, cr: &CollectedRef) -> bool {
    if epoch.kind == EpochKind::Serial {
        return true;
    }
    cr.loops.iter().all(|l| match l.kind {
        LoopKind::Serial => true,
        LoopKind::DoAllStatic => l.lo.as_constant().is_some() && l.hi.as_constant().is_some(),
        LoopKind::DoAllDynamic { .. } => false,
    })
}

/// Per-epoch, per-array aggregate access sets.
#[derive(Clone, Debug)]
pub struct EpochAccess {
    /// `writes[array][pe]`: may-write set of each PE.
    pub writes: Vec<Vec<SectionSet>>,
    /// `writes_pe_specific[array]`: false when some write's PE mapping is
    /// unknown.
    pub writes_pe_specific: Vec<bool>,
    /// Collected references (reads and writes) with their contexts.
    pub refs: Vec<CollectedRef>,
}

/// Compute the aggregate write sections of an epoch, per array per PE.
pub fn epoch_access_sections(
    program: &Program,
    layout: &Layout,
    epoch: &Epoch,
) -> EpochAccess {
    let n_arrays = program.arrays.len();
    let n_pes = layout.n_pes();
    let mut writes: Vec<Vec<SectionSet>> = program
        .arrays
        .iter()
        .map(|a| vec![SectionSet::bottom(a.rank()); n_pes])
        .collect();
    let mut writes_pe_specific = vec![true; n_arrays];

    let refs = collect_refs_in_stmts(&epoch.stmts);
    for cr in &refs {
        if cr.access != RefAccess::Write {
            continue;
        }
        let ai: ArrayId = cr.r.array;
        if !ref_is_pe_specific(epoch, cr) {
            writes_pe_specific[ai.index()] = false;
        }
        for (pe, w) in writes[ai.index()].iter_mut().enumerate().take(n_pes) {
            let s = ref_section_for_pe(program, layout, epoch, cr, pe);
            w.union_with(&s);
        }
    }
    EpochAccess { writes, writes_pe_specific, refs }
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    /// doall j over columns, inner serial i: A(i, j) write.
    fn column_sweep(n: usize) -> (Program, ccdp_ir::ArrayId) {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[n, n]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 0, n as i64 - 1, |e, j| {
                e.serial("i", 0, n as i64 - 1, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j).rd() + 1.0);
                });
            });
        });
        (pb.finish().unwrap(), a.id())
    }

    #[test]
    fn doall_restricts_to_pe_share() {
        let (p, _a) = column_sweep(16);
        let layout = Layout::new(&p, 4);
        let e = &p.epochs()[0];
        let refs = collect_refs_in_stmts(&e.stmts);
        let w = refs.iter().find(|r| r.access == RefAccess::Write).unwrap();
        for pe in 0..4usize {
            let s = ref_section_for_pe(&p, &layout, e, w, pe);
            let parts = s.parts();
            assert_eq!(parts.len(), 1);
            let sec = &parts[0];
            assert_eq!(sec.dim(0).lo(), Some(0));
            assert_eq!(sec.dim(0).hi(), Some(15));
            assert_eq!(sec.dim(1).lo(), Some(pe as i64 * 4));
            assert_eq!(sec.dim(1).hi(), Some(pe as i64 * 4 + 3));
        }
    }

    #[test]
    fn serial_epoch_only_pe0() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[8]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, 7, |e, i| e.assign(a.at1(i), 0.0));
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 4);
        let e = &p.epochs()[0];
        let refs = collect_refs_in_stmts(&e.stmts);
        let w = &refs[0];
        assert!(!ref_section_for_pe(&p, &layout, e, w, 0).is_empty());
        assert!(ref_section_for_pe(&p, &layout, e, w, 1).is_empty());
        assert!(ref_is_pe_specific(e, w));
    }

    #[test]
    fn dynamic_doall_loses_pe_specificity() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[8]);
        pb.parallel_epoch("e", |e| {
            e.doall_dynamic("i", 0, 7, 2, |e, i| e.assign(a.at1(i), 0.0));
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 4);
        let e = &p.epochs()[0];
        let refs = collect_refs_in_stmts(&e.stmts);
        let w = &refs[0];
        assert!(!ref_is_pe_specific(e, w));
        // Every PE's may-touch set is the full range.
        for pe in 0..4 {
            let s = ref_section_for_pe(&p, &layout, e, w, pe);
            assert!(s.covers_section(&Section::new(vec![Range::dense(0, 7)])));
        }
    }

    #[test]
    fn offset_subscripts_shift_sections() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        let b = pb.shared("B", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 1, 14, |e, j| {
                e.serial("i", 1, 14, |e, i| {
                    e.assign(b.at2(i, j), a.at2(i, j - 1).rd() + a.at2(i, j + 1).rd());
                });
            });
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 2);
        let e = &p.epochs()[0];
        let refs = collect_refs_in_stmts(&e.stmts);
        let reads: Vec<_> = refs.iter().filter(|r| r.access == RefAccess::Read).collect();
        // PE0 executes j=1..7; A(i,j-1) touches cols 0..6, A(i,j+1) cols 2..8.
        let s0 = ref_section_for_pe(&p, &layout, e, reads[0], 0);
        assert_eq!(s0.parts()[0].dim(1), &Range::dense(0, 6));
        let s1 = ref_section_for_pe(&p, &layout, e, reads[1], 0);
        assert_eq!(s1.parts()[0].dim(1), &Range::dense(2, 8));
    }

    #[test]
    fn strided_subscript_produces_strided_range() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[32]);
        pb.serial_epoch("e", |e| {
            e.serial("i", 0, 7, |e, i| {
                e.assign(a.at1(i * 4 + 1), 0.0);
            });
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 1);
        let e = &p.epochs()[0];
        let refs = collect_refs_in_stmts(&e.stmts);
        let s = ref_section_for_pe(&p, &layout, e, &refs[0], 0);
        assert_eq!(s.parts()[0].dim(0), &Range::strided(1, 29, 4));
    }

    #[test]
    fn epoch_writes_aggregate_per_pe() {
        let (p, aid) = column_sweep(8);
        let layout = Layout::new(&p, 2);
        let e = &p.epochs()[0];
        let acc = epoch_access_sections(&p, &layout, e);
        let w0 = &acc.writes[aid.index()][0];
        let w1 = &acc.writes[aid.index()][1];
        assert!(w0.intersects_section(&Section::point(&[0, 0])));
        assert!(!w0.intersects_section(&Section::point(&[0, 7])));
        assert!(w1.intersects_section(&Section::point(&[0, 7])));
        assert!(acc.writes_pe_specific[aid.index()]);
    }
}
