//! Static shard-independence analysis: prove, at compile time, that the
//! PE blocks of a statically scheduled DOALL touch pairwise-disjoint cache
//! lines — the static analogue of the simulator's dynamic ShardLog conflict
//! check (and of LazyPIM-style signature comparison, done ahead of time).
//!
//! The simulator's epoch-sharded engine executes a DOALL's PE blocks on
//! cloned state and merges them **in block order**. A merge is only unsound
//! when an *earlier* block wrote a cache line that a *later* block touched
//! (read, wrote, or prefetched): the later block's clone then missed the
//! earlier block's update that the serial schedule would have made visible.
//! (The converse — an earlier block touching a line a later block writes —
//! is harmless: the serial schedule runs blocks in ascending order too, so
//! the earlier toucher never sees the later write either.)
//!
//! This pass computes, per (epoch, PE-block partition), line-granular affine
//! footprints of every reference under the DOALL — reads and writes from the
//! statement list, plus in-body prefetch constructs — and returns one of:
//!
//! * [`ShardVerdict::Disjoint`]: no line is written by one block and touched
//!   by a later block. The engine may fork/join without any dynamic
//!   conflict log, and may shard even under cycle/step budgets (per-block
//!   budget slicing is sound when blocks are independent).
//! * [`ShardVerdict::MayConflict`]: a concrete witness — the line and the
//!   two references — where the footprints overlap. The dynamic check stays.
//! * [`ShardVerdict::Unknown`]: some access cannot be bounded statically
//!   (dynamic scheduling, non-constant DOALL bounds, a guarded reference);
//!   conservative, the dynamic check stays.
//!
//! # Soundness direction
//!
//! Footprints are **over**-approximations (serial and wrapper loop variables
//! use their full ranges, multi-variable subscripts widen to dense bounding
//! ranges), so `Disjoint` is a proof and `MayConflict` is only a *may*.
//! Because blocks are contiguous ascending PE ranges, disjointness at the
//! finest partition (one PE per block) implies disjointness for **every**
//! coarser contiguous partition: coarse blocks union fine ones, and every
//! fine pair across a coarse boundary is already proven disjoint. Callers
//! therefore cache one per-PE verdict per loop and reuse it at any worker
//! count.
//!
//! In-body prefetch constructs are part of the touch footprint. Line
//! prefetches contribute their own subscripts (a corrupted or moved line
//! prefetch can drag a foreign line into the block). Vector prefetches and
//! pipelined annotations target only elements of the reference they cover,
//! evaluated within the issuing PE's iteration range — prologue plus steady
//! state of a pipelined prefetch at distance `d` issue exactly the covered
//! read's elements over the loop's full range — so their footprints are
//! subsumed by the covered read's, which is collected anyway; a vector
//! prefetch whose covered read is *not* under the DOALL is refused as
//! [`ShardBlocker::OpaquePrefetch`].
//!
//! # Address model
//!
//! Line indices are computed over the simulator's shared address space:
//! shared arrays packed contiguously in `ArrayId` order, column-major
//! within each array, `line = word_address / line_words`. This mirrors
//! `t3d_sim::Memory`'s layout rule (pinned by a test in that crate).

use std::collections::BTreeMap;

use ccdp_dist::Layout;
use ccdp_ir::{
    collect_refs_in_stmts, ArrayId, ArrayRef, CollectedRef, Epoch, EpochId, EpochKind, Loop,
    LoopCtx, LoopId, LoopKind, PrefetchKind, Program, RefAccess, RefId, Sharing, Stmt,
};
use ccdp_sections::{Section, SectionSet};

use crate::access::ref_section_for_pe;

/// The three-point verdict lattice (`Disjoint` ⊑ `MayConflict` ⊑ `Unknown`
/// in the "how much dynamic machinery must stay" order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardVerdict {
    /// Proven: no line written by one block is touched by a later block.
    Disjoint,
    /// A concrete overlap witness was found (may or may not manifest).
    MayConflict(ConflictWitness),
    /// Some access defeated the analysis; the blocker names the first
    /// offender in walk order.
    Unknown(ShardBlocker),
}

impl ShardVerdict {
    pub fn is_disjoint(&self) -> bool {
        matches!(self, ShardVerdict::Disjoint)
    }

    /// Stable one-word key for reports.
    pub fn key(&self) -> &'static str {
        match self {
            ShardVerdict::Disjoint => "disjoint",
            ShardVerdict::MayConflict(_) => "may_conflict",
            ShardVerdict::Unknown(_) => "unknown",
        }
    }
}

/// Witness of a potential cross-block conflict: the smallest shared-space
/// line index in the first overlapping (writer, toucher) block pair, plus
/// the lowest-`seq` write/touch references mapping to that line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConflictWitness {
    pub array: ArrayId,
    /// Line index in the shared address space (`word_addr / line_words`).
    pub line: u64,
    /// The writing reference in the earlier block.
    pub write: RefId,
    /// The touching (read/write/prefetch) reference in the later block.
    pub touch: RefId,
    /// `(writer_block, toucher_block)` indices into the partition.
    pub blocks: (usize, usize),
}

/// Why the analysis answered [`ShardVerdict::Unknown`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardBlocker {
    /// The DOALL (or an enclosing/inner loop of some reference) is
    /// dynamically scheduled: the iteration→PE map is a run-time decision.
    DynamicSchedule { l: LoopId },
    /// The DOALL bounds are not compile-time constants, so the per-PE
    /// iteration shares are unknown.
    NonConstantBounds { l: LoopId },
    /// The reference sits under a branch inside the epoch: whether it
    /// executes is not decidable here.
    Guarded { rid: RefId },
    /// An in-body vector prefetch covers a reference that is not under the
    /// DOALL, so its footprint cannot be tied to a collected read.
    OpaquePrefetch { rid: RefId },
}

impl ShardBlocker {
    /// The reference the blocker is anchored to, when there is one.
    pub fn rid(&self) -> Option<RefId> {
        match self {
            ShardBlocker::Guarded { rid } | ShardBlocker::OpaquePrefetch { rid } => Some(*rid),
            _ => None,
        }
    }

    pub fn describe(&self) -> String {
        match self {
            ShardBlocker::DynamicSchedule { l } => {
                format!("loop #{} is dynamically scheduled", l.index())
            }
            ShardBlocker::NonConstantBounds { l } => {
                format!("DOALL #{} has non-constant bounds", l.index())
            }
            ShardBlocker::Guarded { rid } => {
                format!("ref #{} is guarded by a branch", rid.index())
            }
            ShardBlocker::OpaquePrefetch { rid } => {
                format!("vector prefetch covering ref #{} has no in-DOALL read", rid.index())
            }
        }
    }
}

/// Verdict for one epoch's DOALL, as produced by [`shard_scan`].
#[derive(Clone, Debug)]
pub struct DoallVerdict {
    pub epoch: EpochId,
    pub label: String,
    pub doall: LoopId,
    pub verdict: ShardVerdict,
}

/// Base word address of a shared array in the simulator's packed shared
/// space (`None` for private arrays). Mirrors `t3d_sim::Memory::new`.
pub fn shared_base_words(program: &Program, array: ArrayId) -> Option<usize> {
    if program.array(array).sharing != Sharing::Shared {
        return None;
    }
    let mut base = 0usize;
    for a in &program.arrays {
        if a.id == array {
            return Some(base);
        }
        if a.sharing == Sharing::Shared {
            base += a.len();
        }
    }
    None
}

/// One reference participating in the footprint: the collected context plus
/// whether it writes (writes also touch).
struct ShardRef {
    cr: CollectedRef,
    write: bool,
}

/// Collect every footprint-relevant reference under the target DOALL:
/// assignment reads/writes plus in-body line prefetches (as touches).
/// Returns the blocker defeating the analysis, if any, preferring the first
/// in walk order.
fn collect_shard_refs(
    epoch: &Epoch,
    doall: LoopId,
) -> Result<Vec<ShardRef>, ShardBlocker> {
    // Data references come from the shared walker so `seq` ordering matches
    // every other analysis; prefetch statements need a dedicated walk.
    let mut out: Vec<ShardRef> = Vec::new();
    for cr in collect_refs_in_stmts(&epoch.stmts) {
        if !cr.loops.iter().any(|l| l.id == doall) {
            // Assignments outside the DOALL of a parallel epoch are not
            // executable by the engine's wrapper semantics; be conservative
            // if one ever appears.
            return Err(ShardBlocker::Guarded { rid: cr.r.id });
        }
        if cr.under_if {
            return Err(ShardBlocker::Guarded { rid: cr.r.id });
        }
        if let Some(l) = cr.loops.iter().find(|l| matches!(l.kind, LoopKind::DoAllDynamic { .. }))
        {
            return Err(ShardBlocker::DynamicSchedule { l: l.id });
        }
        let write = cr.access == RefAccess::Write;
        out.push(ShardRef { cr, write });
    }

    // In-body prefetch constructs. Line prefetches become touch pseudo-refs
    // with their own subscripts; vector prefetches must cover a collected
    // in-DOALL read (whose footprint subsumes theirs).
    struct PfWalk {
        chain: Vec<LoopCtx>,
        in_target: bool,
        under_if: bool,
        doall: LoopId,
        lines: Vec<(ArrayRef, Vec<LoopCtx>, bool)>,
        vectors: Vec<RefId>,
    }
    fn body_has_loop(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Loop(_) => true,
            Stmt::If(i) => body_has_loop(&i.then_branch) || body_has_loop(&i.else_branch),
            _ => false,
        })
    }
    fn walk(w: &mut PfWalk, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Prefetch(pf) if w.in_target => match &pf.kind {
                    PrefetchKind::Line { covers, array, index } => {
                        w.lines.push((
                            ArrayRef { id: *covers, array: *array, index: index.clone() },
                            w.chain.clone(),
                            w.under_if,
                        ));
                    }
                    PrefetchKind::Vector { covers, .. } => w.vectors.push(*covers),
                },
                Stmt::Loop(l) => {
                    w.chain.push(LoopCtx {
                        id: l.id,
                        var: l.var,
                        lo: l.lo.clone(),
                        hi: l.hi.clone(),
                        step: l.step,
                        kind: l.kind,
                        align: l.align,
                        is_innermost: !body_has_loop(&l.body),
                    });
                    let entered = l.id == w.doall;
                    if entered {
                        w.in_target = true;
                    }
                    walk(w, &l.body);
                    if entered {
                        w.in_target = false;
                    }
                    w.chain.pop();
                }
                Stmt::If(i) => {
                    let saved = w.under_if;
                    w.under_if = true;
                    walk(w, &i.then_branch);
                    walk(w, &i.else_branch);
                    w.under_if = saved;
                }
                _ => {}
            }
        }
    }
    let mut w = PfWalk {
        chain: Vec::new(),
        in_target: false,
        under_if: false,
        doall,
        lines: Vec::new(),
        vectors: Vec::new(),
    };
    walk(&mut w, &epoch.stmts);

    let next_seq = out.iter().map(|r| r.cr.seq + 1).max().unwrap_or(0);
    for (k, (r, chain, under_if)) in w.lines.into_iter().enumerate() {
        if under_if {
            return Err(ShardBlocker::Guarded { rid: r.id });
        }
        // A prefetch subscript mentioning a variable outside its chain can
        // not be intervalled — refuse rather than guess.
        let chain_vars: Vec<_> = chain.iter().map(|l| l.var).collect();
        if r.index.iter().any(|a| a.vars().any(|v| !chain_vars.contains(&v))) {
            return Err(ShardBlocker::OpaquePrefetch { rid: r.id });
        }
        out.push(ShardRef {
            cr: CollectedRef {
                r,
                access: RefAccess::Read,
                loops: chain,
                under_if: false,
                under_nonaffine_if: false,
                seq: next_seq + k as u32,
            },
            write: false,
        });
    }
    for covers in w.vectors {
        let covered_in_doall = out
            .iter()
            .any(|sr| !sr.write && sr.cr.r.id == covers);
        if !covered_in_doall {
            return Err(ShardBlocker::OpaquePrefetch { rid: covers });
        }
    }
    Ok(out)
}

/// Insert every line a section maps to, keeping the lowest-`seq` reference
/// per line (for deterministic witnesses).
fn add_section_lines(
    map: &mut BTreeMap<u64, (u32, RefId)>,
    sec: &Section,
    strides: &[usize],
    base: usize,
    line_words: u64,
    seq: u32,
    rid: RefId,
) {
    if sec.is_empty() {
        return;
    }
    let dims = sec.dims();
    // Enumerate coordinates of dims[1..]; dim 0 maps to a contiguous (or
    // strided) run of addresses inside the enumeration's base offset.
    let mut insert = |line: u64| {
        let e = map.entry(line).or_insert((seq, rid));
        if seq < e.0 {
            *e = (seq, rid);
        }
    };
    let mut outer: Vec<i64> = Vec::new();
    fn rec(
        d: usize,
        dims: &[ccdp_sections::Range],
        strides: &[usize],
        base: usize,
        line_words: u64,
        outer: &mut Vec<i64>,
        insert: &mut impl FnMut(u64),
    ) {
        if d == 0 {
            let off: i64 = outer
                .iter()
                .zip(&strides[1..])
                .map(|(&c, &s)| c * s as i64)
                .sum::<i64>()
                + base as i64;
            let r0 = &dims[0];
            let (Some(lo), Some(hi)) = (r0.lo(), r0.hi()) else { return };
            if r0.stride() == 1 {
                let first = (off + lo) as u64 / line_words;
                let last = (off + hi) as u64 / line_words;
                for line in first..=last {
                    insert(line);
                }
            } else {
                for v in r0.iter() {
                    insert((off + v) as u64 / line_words);
                }
            }
            return;
        }
        for v in dims[d].iter() {
            outer.push(v);
            rec(d - 1, dims, strides, base, line_words, outer, insert);
            outer.pop();
        }
    }
    rec(dims.len() - 1, dims, strides, base, line_words, &mut outer, &mut insert);
}

#[allow(clippy::too_many_arguments)] // internal helper mirroring add_section_lines
fn add_set_lines(
    map: &mut BTreeMap<u64, (u32, RefId)>,
    set: &SectionSet,
    decl_extents: &[usize],
    strides: &[usize],
    base: usize,
    line_words: u64,
    seq: u32,
    rid: RefId,
) {
    if set.is_top() {
        // Whole array (should not occur for validated programs; stay sound).
        add_section_lines(
            map,
            &Section::whole(decl_extents),
            strides,
            base,
            line_words,
            seq,
            rid,
        );
        return;
    }
    for part in set.parts() {
        add_section_lines(map, part, strides, base, line_words, seq, rid);
    }
}

/// Locate a loop by id anywhere in a statement list.
fn find_loop(stmts: &[Stmt], id: LoopId) -> Option<&Loop> {
    for s in stmts {
        match s {
            Stmt::Loop(l) => {
                if l.id == id {
                    return Some(l);
                }
                if let Some(f) = find_loop(&l.body, id) {
                    return Some(f);
                }
            }
            Stmt::If(i) => {
                if let Some(f) =
                    find_loop(&i.then_branch, id).or_else(|| find_loop(&i.else_branch, id))
                {
                    return Some(f);
                }
            }
            _ => {}
        }
    }
    None
}

/// Shard-independence verdict for one DOALL under an explicit contiguous
/// block partition (`blocks[k] = (lo_pe, hi_pe)`, ascending, half-open).
pub fn shard_verdict_partition(
    program: &Program,
    layout: &Layout,
    epoch: &Epoch,
    doall: LoopId,
    line_words: usize,
    blocks: &[(usize, usize)],
) -> ShardVerdict {
    debug_assert!(line_words >= 1);
    let Some(d) = find_loop(&epoch.stmts, doall) else {
        return ShardVerdict::Unknown(ShardBlocker::NonConstantBounds { l: doall });
    };
    if let LoopKind::DoAllDynamic { .. } = d.kind {
        return ShardVerdict::Unknown(ShardBlocker::DynamicSchedule { l: doall });
    }
    if d.lo.as_constant().is_none() || d.hi.as_constant().is_none() {
        return ShardVerdict::Unknown(ShardBlocker::NonConstantBounds { l: doall });
    }
    let refs = match collect_shard_refs(epoch, doall) {
        Ok(r) => r,
        Err(b) => return ShardVerdict::Unknown(b),
    };

    // Only arrays with at least one write under the DOALL can conflict;
    // private arrays live in per-PE spaces and never cross blocks.
    let mut written: Vec<ArrayId> = refs
        .iter()
        .filter(|sr| sr.write && program.array(sr.cr.r.array).sharing == Sharing::Shared)
        .map(|sr| sr.cr.r.array)
        .collect();
    written.sort_by_key(|a| a.index());
    written.dedup();
    if written.is_empty() {
        return ShardVerdict::Disjoint;
    }

    let lw = line_words as u64;
    // Per written array: per-block (line -> lowest-seq ref) maps for writes
    // and touches.
    type LineMap = BTreeMap<u64, (u32, RefId)>;
    let mut w_lines: Vec<Vec<LineMap>> = vec![vec![LineMap::new(); blocks.len()]; written.len()];
    let mut t_lines: Vec<Vec<LineMap>> = vec![vec![LineMap::new(); blocks.len()]; written.len()];
    for (ai, &array) in written.iter().enumerate() {
        let decl = program.array(array);
        let strides = decl.strides();
        let base = shared_base_words(program, array)
            .expect("written shared array has a packed base");
        for sr in refs.iter().filter(|sr| sr.cr.r.array == array) {
            for (b, &(lo_pe, hi_pe)) in blocks.iter().enumerate() {
                for pe in lo_pe..hi_pe {
                    let set = ref_section_for_pe(program, layout, epoch, &sr.cr, pe);
                    if sr.write {
                        add_set_lines(
                            &mut w_lines[ai][b],
                            &set,
                            &decl.extents,
                            &strides,
                            base,
                            lw,
                            sr.cr.seq,
                            sr.cr.r.id,
                        );
                    }
                    // Writes touch too: a later block overwriting an earlier
                    // block's line diverges from the serial cache schedule.
                    add_set_lines(
                        &mut t_lines[ai][b],
                        &set,
                        &decl.extents,
                        &strides,
                        base,
                        lw,
                        sr.cr.seq,
                        sr.cr.r.id,
                    );
                }
            }
        }
    }

    // Pair scan, merge order: for each later block, any earlier block's
    // write set intersecting its touch set is a conflict. Deterministic
    // witness: first (toucher, writer) pair in (b2 asc, b1 asc, array asc)
    // order, smallest overlapping line, lowest-seq refs on that line.
    // Index loops are deliberate: the (b2 asc, b1 asc) visit order IS the
    // witness-determinism contract.
    #[allow(clippy::needless_range_loop)]
    for b2 in 1..blocks.len() {
        for b1 in 0..b2 {
            for (ai, &array) in written.iter().enumerate() {
                let (wm, tm) = (&w_lines[ai][b1], &t_lines[ai][b2]);
                if wm.is_empty() || tm.is_empty() {
                    continue;
                }
                // BTreeMap keys iterate ascending: the first shared key is
                // the smallest overlapping line.
                let (small, large, small_is_w) = if wm.len() <= tm.len() {
                    (wm, tm, true)
                } else {
                    (tm, wm, false)
                };
                for (&line, &(_, rid_s)) in small {
                    if let Some(&(_, rid_l)) = large.get(&line) {
                        let (write, touch) =
                            if small_is_w { (rid_s, rid_l) } else { (rid_l, rid_s) };
                        return ShardVerdict::MayConflict(ConflictWitness {
                            array,
                            line,
                            write,
                            touch,
                            blocks: (b1, b2),
                        });
                    }
                }
            }
        }
    }
    ShardVerdict::Disjoint
}

/// Shard-independence verdict at the finest partition: one PE per block.
/// `Disjoint` here implies disjointness for every coarser contiguous
/// ascending partition (see the module docs), so this single verdict is
/// valid at any worker count.
pub fn shard_verdict(
    program: &Program,
    layout: &Layout,
    epoch: &Epoch,
    doall: LoopId,
    line_words: usize,
) -> ShardVerdict {
    let blocks: Vec<(usize, usize)> = (0..layout.n_pes()).map(|p| (p, p + 1)).collect();
    shard_verdict_partition(program, layout, epoch, doall, line_words, &blocks)
}

/// Scan a whole program: one verdict per parallel epoch's DOALL, schedule
/// order, first occurrence per epoch id (epochs reached through several
/// call sites share one body).
pub fn shard_scan(program: &Program, layout: &Layout, line_words: usize) -> Vec<DoallVerdict> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for e in program.epochs() {
        if e.kind != EpochKind::Parallel || !seen.insert(e.id) {
            continue;
        }
        let Some((_, d)) = ccdp_ir::find_doall(&e.stmts) else { continue };
        out.push(DoallVerdict {
            epoch: e.id,
            label: e.label.clone(),
            doall: d.id,
            verdict: shard_verdict(program, layout, e, d.id, line_words),
        });
    }
    out
}

#[cfg(test)]
mod unit {
    use super::*;
    use ccdp_ir::ProgramBuilder;

    const LW: usize = 4;

    fn first_epoch(p: &Program) -> &Epoch {
        p.epochs()[0]
    }

    fn verdict_of(p: &Program, n_pes: usize) -> ShardVerdict {
        let layout = Layout::new(p, n_pes);
        let e = first_epoch(p);
        let (_, d) = ccdp_ir::find_doall(&e.stmts).expect("doall");
        shard_verdict(p, &layout, e, d.id, LW)
    }

    /// Column sweep: every PE writes and reads only its own columns.
    #[test]
    fn column_sweep_is_disjoint() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j).rd() + 1.0);
                });
            });
        });
        let p = pb.finish().unwrap();
        for pes in [2, 4, 8] {
            assert_eq!(verdict_of(&p, pes), ShardVerdict::Disjoint, "P={pes}");
        }
    }

    /// Backward column stencil: block b reads the last column written by
    /// block b-1 — the asymmetric (earlier-write, later-touch) case.
    #[test]
    fn backward_stencil_may_conflict_with_witness() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 1, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j - 1).rd() * 0.5);
                });
            });
        });
        let p = pb.finish().unwrap();
        let ShardVerdict::MayConflict(w) = verdict_of(&p, 4) else {
            panic!("expected MayConflict");
        };
        // Block 1's first column reads block 0's last written column.
        assert_eq!(w.blocks, (0, 1));
        // Witness is deterministic.
        let v2 = verdict_of(&p, 4);
        assert_eq!(v2, ShardVerdict::MayConflict(w));
    }

    /// Forward column stencil: block b reads *later* blocks' columns, which
    /// the merge order makes harmless — proven disjoint.
    #[test]
    fn forward_stencil_is_disjoint() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 0, n - 2, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j + 1).rd() * 0.5);
                });
            });
        });
        let p = pb.finish().unwrap();
        assert_eq!(verdict_of(&p, 4), ShardVerdict::Disjoint);
    }

    /// Row-partitioned DOALL with unaligned rows: adjacent blocks share
    /// cache lines even though elements are disjoint.
    #[test]
    fn row_partition_conflicts_at_line_granularity() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            // DOALL over the *first* (contiguous) dimension: with a 4-word
            // line and 2 rows per PE at P=8, neighbouring blocks write the
            // same lines.
            e.doall("i", 0, n - 1, |e, i| {
                e.serial("j", 0, n - 1, |e, j| {
                    e.assign(a.at2(i, j), a.at2(i, j).rd() + 1.0);
                });
            });
        });
        let p = pb.finish().unwrap();
        assert!(matches!(verdict_of(&p, 8), ShardVerdict::MayConflict(_)));
        // At element granularity (line_words = 1) the same program is
        // disjoint — the conflict is purely a line-sharing artifact.
        let layout = Layout::new(&p, 8);
        let e = first_epoch(&p);
        let (_, d) = ccdp_ir::find_doall(&e.stmts).unwrap();
        assert_eq!(shard_verdict(&p, &layout, e, d.id, 1), ShardVerdict::Disjoint);
    }

    #[test]
    fn branch_in_doall_is_unknown() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.if_(ccdp_ir::CondB::gt(i, 3), |e| {
                        e.assign(a.at2(i, j), 1.0);
                    });
                });
            });
        });
        let p = pb.finish().unwrap();
        assert!(matches!(
            verdict_of(&p, 4),
            ShardVerdict::Unknown(ShardBlocker::Guarded { .. })
        ));
    }

    #[test]
    fn dynamic_doall_is_unknown() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            e.doall_dynamic("j", 0, n - 1, 2, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), 1.0);
                });
            });
        });
        let p = pb.finish().unwrap();
        assert!(matches!(
            verdict_of(&p, 4),
            ShardVerdict::Unknown(ShardBlocker::DynamicSchedule { .. })
        ));
    }

    /// Per-PE Disjoint must imply disjointness of every coarser contiguous
    /// partition (the property the simulator's verdict cache relies on).
    #[test]
    fn fine_disjoint_implies_coarse_disjoint() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| {
                    e.assign(a.at2(i, j), a.at2(i, j).rd() + 1.0);
                });
            });
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 8);
        let e = first_epoch(&p);
        let (_, d) = ccdp_ir::find_doall(&e.stmts).unwrap();
        assert!(shard_verdict(&p, &layout, e, d.id, LW).is_disjoint());
        for blocks in [
            vec![(0usize, 4usize), (4, 8)],
            vec![(0, 2), (2, 5), (5, 8)],
            vec![(0, 8)],
        ] {
            assert!(
                shard_verdict_partition(&p, &layout, e, d.id, LW, &blocks).is_disjoint(),
                "{blocks:?}"
            );
        }
    }

    #[test]
    fn scan_covers_every_parallel_epoch_once() {
        let n = 16i64;
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[16, 16]);
        pb.parallel_epoch("clean", |e| {
            e.doall("j", 0, n - 1, |e, j| {
                e.serial("i", 0, n - 1, |e, i| e.assign(a.at2(i, j), 1.0));
            });
        });
        pb.serial_epoch("s", |e| {
            e.serial("i", 0, n - 1, |e, i| e.assign(a.at2(i, 0), 2.0));
        });
        pb.repeat(3, |rep| {
            rep.parallel_epoch("stencil", |e| {
                e.doall("j", 1, n - 1, |e, j| {
                    e.serial("i", 0, n - 1, |e, i| {
                        e.assign(a.at2(i, j), a.at2(i, j - 1).rd());
                    });
                });
            });
        });
        let p = pb.finish().unwrap();
        let layout = Layout::new(&p, 4);
        let v = shard_scan(&p, &layout, LW);
        assert_eq!(v.len(), 2, "one verdict per parallel epoch");
        assert_eq!(v[0].label, "clean");
        assert!(v[0].verdict.is_disjoint());
        assert_eq!(v[1].label, "stencil");
        assert!(matches!(v[1].verdict, ShardVerdict::MayConflict(_)));
    }

    #[test]
    fn shared_bases_pack_in_array_id_order() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.shared("A", &[8, 8]);
        let b = pb.shared("B", &[4, 4]);
        let c = pb.shared("C", &[2]);
        pb.parallel_epoch("e", |e| {
            e.doall("j", 0, 7, |e, j| e.assign(a.at2(0, j), 1.0));
        });
        let p = pb.finish().unwrap();
        assert_eq!(shared_base_words(&p, a.id()), Some(0));
        assert_eq!(shared_base_words(&p, b.id()), Some(64));
        assert_eq!(shared_base_words(&p, c.id()), Some(80));
    }
}
