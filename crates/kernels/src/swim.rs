//! SWIM — shallow water equations by finite differences (SPEC CFP95).
//!
//! Three major subroutines — CALC1, CALC2, CALC3 — each a doubly-nested
//! loop with the **outer loop parallel** (paper §5.3), called once per time
//! step. We model them as IR *routines* invoked from a `Repeat` block, which
//! is exactly what exercises the interprocedural side of the analysis. The
//! column stencils read `(i, j+1)` neighbours, so only the references that
//! cross a block boundary are remote: the BASE version is already decent
//! and CCDP's improvement is modest (the paper's 2.5–13 %).

use ccdp_dist::{Distribution, Layout};
use ccdp_ir::{Program, ProgramBuilder};

use crate::KernelSpec;

/// Problem size and time steps.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub n: usize,
    pub iters: u32,
}

impl Params {
    /// The paper's configuration: 513×513 grids, 100 iterations.
    pub fn paper() -> Params {
        Params { n: 513, iters: 100 }
    }

    pub fn small() -> Params {
        Params { n: 18, iters: 3 }
    }
}

const TDTS8: f64 = 2.0e-4;
const TDTSDX: f64 = 1.0e-4;
const TDTSDY: f64 = 1.0e-4;
const ALPHA: f64 = 1.0e-3;

/// Extra per-statement cycles modelling the FLOPs of the full SPEC CALC
/// bodies that the slimmed IR statements omit (the real statements carry
/// roughly twice the arithmetic).
const CALC_EXTRA: u32 = 30;

/// Build the IR program: 14 shared grids, three routines, one repeat.
pub fn build(pr: &Params) -> Program {
    let n = pr.n as i64;
    let sz = &[pr.n, pr.n][..];
    let mut pb = ProgramBuilder::new("swim");
    let psi = pb.shared("PSI", sz);
    let u = pb.shared("U", sz);
    let v = pb.shared("V", sz);
    let p = pb.shared("P", sz);
    let unew = pb.shared("UNEW", sz);
    let vnew = pb.shared("VNEW", sz);
    let pnew = pb.shared("PNEW", sz);
    let uold = pb.shared("UOLD", sz);
    let vold = pb.shared("VOLD", sz);
    let pold = pb.shared("POLD", sz);
    let cu = pb.shared("CU", sz);
    let cv = pb.shared("CV", sz);
    let z = pb.shared("Z", sz);
    let h = pb.shared("H", sz);

    // CALC1: mass fluxes, vorticity, height field.
    let calc1 = pb.routine("calc1", |rc| {
        rc.parallel_epoch("calc1", |e| {
            e.doall_aligned("j1", 0, n - 2, &p, |e, j| {
                e.serial("i1", 0, n - 2, |e, i| {
                    e.assign_cost(
                        cu.at2(i + 1, j),
                        0.5 * (p.at2(i + 1, j).rd() + p.at2(i, j).rd())
                            * u.at2(i + 1, j).rd(), CALC_EXTRA);
                    e.assign_cost(
                        cv.at2(i, j + 1),
                        0.5 * (p.at2(i, j + 1).rd() + p.at2(i, j).rd())
                            * v.at2(i, j + 1).rd(), CALC_EXTRA);
                    e.assign_cost(
                        z.at2(i + 1, j + 1),
                        (4.0
                            * (v.at2(i + 1, j + 1).rd() - v.at2(i, j + 1).rd()
                                - u.at2(i + 1, j + 1).rd()
                                + u.at2(i + 1, j).rd()))
                            / (p.at2(i, j).rd()
                                + p.at2(i + 1, j).rd()
                                + p.at2(i + 1, j + 1).rd()
                                + p.at2(i, j + 1).rd()), CALC_EXTRA);
                    e.assign_cost(
                        h.at2(i, j),
                        p.at2(i, j).rd()
                            + 0.25
                                * (u.at2(i + 1, j).rd() * u.at2(i + 1, j).rd()
                                    + u.at2(i, j).rd() * u.at2(i, j).rd()
                                    + v.at2(i, j + 1).rd() * v.at2(i, j + 1).rd()
                                    + v.at2(i, j).rd() * v.at2(i, j).rd()), CALC_EXTRA);
                });
            });
        });
    });

    // CALC2: new velocity and pressure fields.
    let calc2 = pb.routine("calc2", |rc| {
        rc.parallel_epoch("calc2", |e| {
            e.doall_aligned("j2", 0, n - 2, &p, |e, j| {
                e.serial("i2", 0, n - 2, |e, i| {
                    e.assign_cost(
                        unew.at2(i + 1, j),
                        uold.at2(i + 1, j).rd()
                            + TDTS8
                                * (z.at2(i + 1, j + 1).rd() + z.at2(i + 1, j).rd())
                                * (cv.at2(i + 1, j + 1).rd()
                                    + cv.at2(i, j + 1).rd()
                                    + cv.at2(i, j).rd()
                                    + cv.at2(i + 1, j).rd())
                            - TDTSDX * (h.at2(i + 1, j).rd() - h.at2(i, j).rd()), CALC_EXTRA);
                    e.assign_cost(
                        vnew.at2(i, j + 1),
                        vold.at2(i, j + 1).rd()
                            - TDTS8
                                * (z.at2(i + 1, j + 1).rd() + z.at2(i, j + 1).rd())
                                * (cu.at2(i + 1, j + 1).rd()
                                    + cu.at2(i, j + 1).rd()
                                    + cu.at2(i, j).rd()
                                    + cu.at2(i + 1, j).rd())
                            - TDTSDY * (h.at2(i, j + 1).rd() - h.at2(i, j).rd()), CALC_EXTRA);
                    e.assign_cost(
                        pnew.at2(i, j),
                        pold.at2(i, j).rd()
                            - TDTSDX * (cu.at2(i + 1, j).rd() - cu.at2(i, j).rd())
                            - TDTSDY * (cv.at2(i, j + 1).rd() - cv.at2(i, j).rd()), CALC_EXTRA);
                });
            });
        });
    });

    // CALC3: time smoothing — everything aligned, no stale references.
    let calc3 = pb.routine("calc3", |rc| {
        rc.parallel_epoch("calc3", |e| {
            e.doall_aligned("j3", 0, n - 1, &p, |e, j| {
                e.serial("i3", 0, n - 1, |e, i| {
                    e.assign_cost(
                        uold.at2(i, j),
                        u.at2(i, j).rd()
                            + ALPHA
                                * (unew.at2(i, j).rd() - 2.0 * u.at2(i, j).rd()
                                    + uold.at2(i, j).rd()), CALC_EXTRA);
                    e.assign_cost(
                        vold.at2(i, j),
                        v.at2(i, j).rd()
                            + ALPHA
                                * (vnew.at2(i, j).rd() - 2.0 * v.at2(i, j).rd()
                                    + vold.at2(i, j).rd()), CALC_EXTRA);
                    e.assign_cost(
                        pold.at2(i, j),
                        p.at2(i, j).rd()
                            + ALPHA
                                * (pnew.at2(i, j).rd() - 2.0 * p.at2(i, j).rd()
                                    + pold.at2(i, j).rd()), CALC_EXTRA);
                    e.assign_cost(u.at2(i, j), unew.at2(i, j).rd(), CALC_EXTRA);
                    e.assign_cost(v.at2(i, j), vnew.at2(i, j).rd(), CALC_EXTRA);
                    e.assign_cost(p.at2(i, j), pnew.at2(i, j).rd(), CALC_EXTRA);
                });
            });
        });
    });

    // Initialization.
    pb.parallel_epoch("init", |e| {
        e.doall_aligned("j0", 0, n - 1, &p, |e, j| {
            e.serial("i0", 0, n - 1, |e, i| {
                e.assign(
                    psi.at2(i, j),
                    (i.val() * i.val() - j.val() * j.val()) * 1.0e-4,
                );
                e.assign(u.at2(i, j), i.val() * 0.01 - j.val() * 0.005);
                e.assign(v.at2(i, j), j.val() * 0.01 - i.val() * 0.003);
                e.assign(p.at2(i, j), (i.val() + j.val()) * 0.001 + 10.0);
                e.assign(cu.at2(i, j), 0.0);
                e.assign(cv.at2(i, j), 0.0);
                e.assign(z.at2(i, j), 0.0);
                e.assign(h.at2(i, j), 0.0);
                e.assign(unew.at2(i, j), 0.0);
                e.assign(vnew.at2(i, j), 0.0);
                e.assign(pnew.at2(i, j), 0.0);
            });
        });
    });
    pb.parallel_epoch("init_old", |e| {
        e.doall_aligned("jo", 0, n - 1, &p, |e, j| {
            e.serial("io", 0, n - 1, |e, i| {
                e.assign(uold.at2(i, j), u.at2(i, j).rd());
                e.assign(vold.at2(i, j), v.at2(i, j).rd());
                e.assign(pold.at2(i, j), p.at2(i, j).rd());
            });
        });
    });

    pb.repeat(pr.iters, |rep| {
        rep.call(calc1);
        rep.call(calc2);
        rep.call(calc3);
    });

    pb.finish().expect("SWIM builds a valid program")
}

/// Golden `PNEW` after `iters` iterations.
pub fn golden_iters(pr: &Params, iters: u32) -> Vec<f64> {
    let n = pr.n;
    let at = |i: usize, j: usize| i + j * n;
    let nn = n * n;
    let (mut u, mut v, mut p) = (vec![0.0; nn], vec![0.0; nn], vec![0.0; nn]);
    let (mut unew, mut vnew, mut pnew) = (vec![0.0; nn], vec![0.0; nn], vec![0.0; nn]);
    let (mut uold, mut vold, mut pold) = (vec![0.0; nn], vec![0.0; nn], vec![0.0; nn]);
    let (mut cu, mut cv, mut z, mut h) =
        (vec![0.0; nn], vec![0.0; nn], vec![0.0; nn], vec![0.0; nn]);
    for j in 0..n {
        for i in 0..n {
            let (fi, fj) = (i as f64, j as f64);
            u[at(i, j)] = fi * 0.01 - fj * 0.005;
            v[at(i, j)] = fj * 0.01 - fi * 0.003;
            p[at(i, j)] = (fi + fj) * 0.001 + 10.0;
        }
    }
    for j in 0..n {
        for i in 0..n {
            uold[at(i, j)] = u[at(i, j)];
            vold[at(i, j)] = v[at(i, j)];
            pold[at(i, j)] = p[at(i, j)];
        }
    }
    for _ in 0..iters {
        for j in 0..n - 1 {
            for i in 0..n - 1 {
                cu[at(i + 1, j)] = 0.5 * (p[at(i + 1, j)] + p[at(i, j)]) * u[at(i + 1, j)];
                cv[at(i, j + 1)] = 0.5 * (p[at(i, j + 1)] + p[at(i, j)]) * v[at(i, j + 1)];
                z[at(i + 1, j + 1)] = (4.0
                    * (v[at(i + 1, j + 1)] - v[at(i, j + 1)] - u[at(i + 1, j + 1)]
                        + u[at(i + 1, j)]))
                    / (p[at(i, j)] + p[at(i + 1, j)] + p[at(i + 1, j + 1)] + p[at(i, j + 1)]);
                h[at(i, j)] = p[at(i, j)]
                    + 0.25
                        * (u[at(i + 1, j)] * u[at(i + 1, j)] + u[at(i, j)] * u[at(i, j)]
                            + v[at(i, j + 1)] * v[at(i, j + 1)]
                            + v[at(i, j)] * v[at(i, j)]);
            }
        }
        for j in 0..n - 1 {
            for i in 0..n - 1 {
                unew[at(i + 1, j)] = uold[at(i + 1, j)]
                    + TDTS8
                        * (z[at(i + 1, j + 1)] + z[at(i + 1, j)])
                        * (cv[at(i + 1, j + 1)] + cv[at(i, j + 1)] + cv[at(i, j)]
                            + cv[at(i + 1, j)])
                    - TDTSDX * (h[at(i + 1, j)] - h[at(i, j)]);
                vnew[at(i, j + 1)] = vold[at(i, j + 1)]
                    - TDTS8
                        * (z[at(i + 1, j + 1)] + z[at(i, j + 1)])
                        * (cu[at(i + 1, j + 1)] + cu[at(i, j + 1)] + cu[at(i, j)]
                            + cu[at(i + 1, j)])
                    - TDTSDY * (h[at(i, j + 1)] - h[at(i, j)]);
                pnew[at(i, j)] = pold[at(i, j)]
                    - TDTSDX * (cu[at(i + 1, j)] - cu[at(i, j)])
                    - TDTSDY * (cv[at(i, j + 1)] - cv[at(i, j)]);
            }
        }
        for j in 0..n {
            for i in 0..n {
                uold[at(i, j)] = u[at(i, j)]
                    + ALPHA * (unew[at(i, j)] - 2.0 * u[at(i, j)] + uold[at(i, j)]);
                vold[at(i, j)] = v[at(i, j)]
                    + ALPHA * (vnew[at(i, j)] - 2.0 * v[at(i, j)] + vold[at(i, j)]);
                pold[at(i, j)] = p[at(i, j)]
                    + ALPHA * (pnew[at(i, j)] - 2.0 * p[at(i, j)] + pold[at(i, j)]);
                u[at(i, j)] = unew[at(i, j)];
                v[at(i, j)] = vnew[at(i, j)];
                p[at(i, j)] = pnew[at(i, j)];
            }
        }
    }
    pnew
}

/// The paper's layout for this kernel: CRAFT *generalized* distribution
/// (block mapping, expensive software address translation) on every array.
pub fn layout(program: &Program, n_pes: usize) -> Layout {
    let mut l = Layout::new(program, n_pes);
    for a in &program.arrays {
        l.set(a.id, Distribution::GeneralizedBlock { dim: a.rank() - 1 });
    }
    l
}

/// Kernel descriptor.
pub fn spec(pr: &Params) -> KernelSpec {
    KernelSpec {
        name: "SWIM",
        program: build(pr),
        check_array: "PNEW",
        golden: golden_iters(pr, pr.iters),
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::values_equal;
    use ccdp_core::{compare, PipelineConfig, Scheme};

    #[test]
    fn sequential_matches_golden() {
        let pr = Params::small();
        let s = spec(&pr);
        let r = ccdp_core::run_seq(&s.program, &PipelineConfig::t3d(1)).unwrap();
        let got = r.array_values(
            &s.program,
            s.program.array_by_name("PNEW").unwrap().id,
        );
        assert!(got.iter().all(|x| x.is_finite()));
        assert!(values_equal(&got, &s.golden));
    }

    #[test]
    fn routines_are_summarized_interprocedurally() {
        let pr = Params::small();
        let program = build(&pr);
        let layout = ccdp_dist::Layout::new(&program, 4);
        let s1 = ccdp_analysis::summarize_routine(&program, &layout, &program.routines[0]);
        let p_id = program.array_by_name("P").unwrap().id;
        let cu_id = program.array_by_name("CU").unwrap().id;
        assert!(s1.reads_array(p_id));
        assert!(s1.writes_array(cu_id));
        assert!(!s1.writes_array(p_id));
    }

    #[test]
    fn stale_refs_exist_but_calc3_is_clean() {
        let pr = Params::small();
        let program = build(&pr);
        let art = ccdp_core::compile_ccdp(&program, &PipelineConfig::t3d(4));
        assert!(art.stale.n_stale() > 0);
        // Reads of column-aligned arrays inside calc3 must be clean. (VNEW
        // is legitimately stale: CALC2 writes VNEW(i, j+1), which crosses
        // the block boundary into the next PE's columns.)
        let aligned: Vec<ccdp_ir::ArrayId> = ["U", "P", "UNEW", "PNEW"]
            .iter()
            .map(|n| program.array_by_name(n).unwrap().id)
            .collect();
        let vnew = program.array_by_name("VNEW").unwrap().id;
        let calc3 = program
            .epochs()
            .into_iter()
            .find(|e| e.label == "calc3")
            .unwrap();
        let mut saw_stale_vnew = false;
        for cr in ccdp_ir::collect_refs_in_stmts(&calc3.stmts) {
            if cr.access == ccdp_ir::RefAccess::Read {
                if aligned.contains(&cr.r.array) {
                    assert!(
                        !art.stale.is_stale(cr.r.id),
                        "calc3 read {:?} wrongly stale",
                        cr.r
                    );
                } else if cr.r.array == vnew {
                    saw_stale_vnew |= art.stale.is_stale(cr.r.id);
                }
            }
        }
        assert!(saw_stale_vnew, "VNEW(i,j) must be stale (cross-block writes)");
    }

    #[test]
    fn all_schemes_agree_and_ccdp_wins_modestly() {
        let pr = Params::small();
        let s = spec(&pr);
        let cmp = compare(&s.program, &PipelineConfig::t3d(4), &[Scheme::Base, Scheme::Ccdp])
            .expect("coherent");
        let pid = s.program.array_by_name("PNEW").unwrap().id;
        let base = &cmp.get(Scheme::Base).unwrap().result;
        let ccdp = &cmp.get(Scheme::Ccdp).unwrap().result;
        assert!(values_equal(&base.array_values(&s.program, pid), &s.golden));
        assert!(values_equal(&ccdp.array_values(&s.program, pid), &s.golden));
        let imp = cmp.improvement_pct().unwrap();
        assert!(imp > 0.0, "{imp:.2}%");
    }
}
