//! MXM — matrix multiply from the NASA7 kernel collection (SPEC CFP92).
//!
//! `C(m×p) = A(m×l) × B(l×p)`, paper size 256×128 × 128×64. All three
//! matrices are column block-distributed; the middle loop (over columns of
//! `C`/`B`) is the parallel DOALL, matching the paper's description. Each
//! PE streams through *all* columns of `A`, which live mostly on other PEs:
//! the BASE version therefore pays a full remote latency per `A` element,
//! while CCDP's stale-reference analysis flags exactly the `A(i,k)` read
//! and vector-prefetches each column of `A` ahead of the inner loop.

use ccdp_ir::{Program, ProgramBuilder};

use crate::KernelSpec;

/// Problem size.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `A` = rows of `B`.
    pub l: usize,
    /// Columns of `B` and `C`.
    pub p: usize,
}

impl Params {
    /// The paper's size (NASA7 MXM: 256×128 times 128×64).
    pub fn paper() -> Params {
        Params { m: 256, l: 128, p: 64 }
    }

    /// Scaled-down size for tests.
    pub fn small() -> Params {
        Params { m: 24, l: 16, p: 8 }
    }
}

/// Initial value of `A(i,k)` — small and index-dependent so indexing bugs
/// corrupt the checksum.
fn a_init(i: i64, k: i64) -> f64 {
    0.5 + 0.001 * (i as f64) + 0.002 * (k as f64)
}

/// Initial value of `B(k,j)`.
fn b_init(k: i64, j: i64) -> f64 {
    0.25 - 0.001 * (k as f64) + 0.003 * (j as f64)
}

/// Build the IR program.
pub fn build(pr: &Params) -> Program {
    let (m, l, p) = (pr.m as i64, pr.l as i64, pr.p as i64);
    let mut pb = ProgramBuilder::new("mxm");
    let a = pb.shared("A", &[pr.m, pr.l]);
    let b = pb.shared("B", &[pr.l, pr.p]);
    let c = pb.shared("C", &[pr.m, pr.p]);

    pb.parallel_epoch("init_a", |e| {
        e.doall_aligned("ka", 0, l - 1, &a, |e, ka| {
            e.serial("ia", 0, m - 1, |e, ia| {
                e.assign(
                    a.at2(ia, ka),
                    ia.val() * 0.001 + ka.val() * 0.002 + 0.5,
                );
            });
        });
    });
    pb.parallel_epoch("init_b", |e| {
        e.doall_aligned("jb", 0, p - 1, &b, |e, jb| {
            e.serial("kb", 0, l - 1, |e, kb| {
                e.assign(
                    b.at2(kb, jb),
                    kb.val() * -0.001 + jb.val() * 0.003 + 0.25,
                );
            });
        });
    });
    pb.parallel_epoch("init_c", |e| {
        e.doall_aligned("jc", 0, p - 1, &c, |e, jc| {
            e.serial("ic", 0, m - 1, |e, ic| {
                e.assign(c.at2(ic, jc), 0.0);
            });
        });
    });
    pb.parallel_epoch("mult", |e| {
        e.doall_aligned("j", 0, p - 1, &c, |e, j| {
            e.serial("k", 0, l - 1, |e, k| {
                e.serial("i", 0, m - 1, |e, i| {
                    e.assign(
                        c.at2(i, j),
                        c.at2(i, j).rd() + a.at2(i, k).rd() * b.at2(k, j).rd(),
                    );
                });
            });
        });
    });
    pb.finish().expect("MXM builds a valid program")
}

/// Golden `C` (column-major), computed with the identical fp operation
/// order (k ascending per element).
pub fn golden(pr: &Params) -> Vec<f64> {
    let (m, l, p) = (pr.m, pr.l, pr.p);
    let mut c = vec![0.0f64; m * p];
    for j in 0..p {
        for k in 0..l {
            let bkj = b_init(k as i64, j as i64);
            for i in 0..m {
                c[i + j * m] += a_init(i as i64, k as i64) * bkj;
            }
        }
    }
    c
}

/// Kernel descriptor.
pub fn spec(pr: &Params) -> KernelSpec {
    KernelSpec {
        name: "MXM",
        program: build(pr),
        check_array: "C",
        golden: golden(pr),
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::values_equal;
    use ccdp_core::{compare, PipelineConfig, Scheme};

    #[test]
    fn sequential_matches_golden() {
        let pr = Params::small();
        let spec = spec(&pr);
        let cfg = PipelineConfig::t3d(1);
        let r = ccdp_core::run_seq(&spec.program, &cfg).unwrap();
        let c = r.array_values(
            &spec.program,
            spec.program.array_by_name("C").unwrap().id,
        );
        assert!(values_equal(&c, &spec.golden));
    }

    #[test]
    fn a_read_is_the_stale_reference() {
        let pr = Params::small();
        let program = build(&pr);
        let cfg = PipelineConfig::t3d(4);
        let art = ccdp_core::compile_ccdp(&program, &cfg);
        // Exactly one stale read: A(i,k). B(k,j) and C(i,j) are aligned.
        assert_eq!(art.stale.n_stale(), 1, "stale refs: {:?}", art.stale.stale_refs());
        assert!(art.plan.stats.vector >= 1, "{:?}", art.plan.stats);
    }

    #[test]
    fn all_schemes_agree_and_ccdp_wins_big() {
        let pr = Params::small();
        let spec = spec(&pr);
        let cmp = compare(&spec.program, &PipelineConfig::t3d(4), &[Scheme::Base, Scheme::Ccdp])
            .expect("coherent");
        let cid = spec.program.array_by_name("C").unwrap().id;
        let base = &cmp.get(Scheme::Base).unwrap().result;
        // CCDP runs the transformed program, same array ids.
        let ccdp = &cmp.get(Scheme::Ccdp).unwrap().result;
        assert!(values_equal(&base.array_values(&spec.program, cid), &spec.golden));
        assert!(values_equal(&ccdp.array_values(&spec.program, cid), &spec.golden));
        let imp = cmp.improvement_pct().unwrap();
        assert!(imp > 30.0, "MXM should improve a lot: {imp:.1}%");
    }
}
