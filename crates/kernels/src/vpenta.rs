//! VPENTA — simultaneous pentadiagonal inversion from NASA7 (SPEC CFP92).
//!
//! Seven shared matrices (paper: 720×720). The solves run *within* each
//! column while the parallel dimension is *across* columns, so with the
//! paper's block column distribution every PE touches only its own data.
//! The BASE version is consequently already good (all accesses local and
//! hardware-cached, paying only CRAFT index overhead); CCDP removes that
//! overhead and the heavier `doshared` epoch setup, matching the paper's
//! modest 4–24 % improvements that *grow* with the PE count (fixed
//! overheads loom larger as per-PE work shrinks).

use ccdp_ir::{Program, ProgramBuilder};

use crate::KernelSpec;

/// Problem size (n×n matrices).
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub n: usize,
}

impl Params {
    /// The paper's 720×720.
    pub fn paper() -> Params {
        Params { n: 720 }
    }

    pub fn small() -> Params {
        Params { n: 24 }
    }
}

fn f_init(i: i64, j: i64) -> f64 {
    1.0 + 0.002 * i as f64 - 0.001 * j as f64
}

fn coef_init(scale: f64, i: i64, j: i64) -> f64 {
    scale * (1.0 + 0.0005 * (i + j) as f64)
}

/// Build the IR program: init epochs for the seven matrices, a forward
/// elimination sweep, and a backward substitution sweep, all column-local.
pub fn build(pr: &Params) -> Program {
    let n = pr.n as i64;
    let mut pb = ProgramBuilder::new("vpenta");
    let a = pb.shared("A", &[pr.n, pr.n]);
    let b = pb.shared("B", &[pr.n, pr.n]);
    let c = pb.shared("C", &[pr.n, pr.n]);
    let d = pb.shared("D", &[pr.n, pr.n]);
    let e_m = pb.shared("E", &[pr.n, pr.n]);
    let f = pb.shared("F", &[pr.n, pr.n]);
    let x = pb.shared("X", &[pr.n, pr.n]);

    pb.parallel_epoch("init", |e| {
        e.doall_aligned("j", 0, n - 1, &x, |e, j| {
            e.serial("i", 0, n - 1, |e, i| {
                e.assign(a.at2(i, j), (i.val() + j.val()) * 0.0002 + -0.1);
                e.assign(b.at2(i, j), (i.val() + j.val()) * 0.0001 + -0.2);
                e.assign(c.at2(i, j), (i.val() + j.val()) * 0.0001 + -0.15);
                e.assign(d.at2(i, j), (i.val() + j.val()) * 0.0005 + 4.0);
                e.assign(e_m.at2(i, j), (i.val() + j.val()) * 0.0002 + -0.12);
                e.assign(f.at2(i, j), i.val() * 0.002 + j.val() * -0.001 + 1.0);
                e.assign(x.at2(i, j), 0.0);
            });
        });
    });

    // Forward elimination: X(i,j) from X(i-1,j), X(i-2,j) — column-local.
    pb.parallel_epoch("forward", |e| {
        e.doall_aligned("jf", 0, n - 1, &x, |e, j| {
            e.serial("if_", 2, n - 1, |e, i| {
                e.assign(
                    x.at2(i, j),
                    (f.at2(i, j).rd()
                        - a.at2(i, j).rd() * x.at2(i - 2, j).rd()
                        - b.at2(i, j).rd() * x.at2(i - 1, j).rd())
                        / d.at2(i, j).rd(),
                );
            });
        });
    });

    // Backward substitution: ascending loop with descending index
    // (X(n-1-k, j) from X(n-k, j), X(n+1-k, j)) — column-local.
    pb.parallel_epoch("backward", |e| {
        e.doall_aligned("jb", 0, n - 1, &x, |e, j| {
            e.serial("kb", 2, n - 1, |e, k| {
                e.assign(
                    x.at2(k * -1 + (n - 1), j),
                    x.at2(k * -1 + (n - 1), j).rd()
                        - (c.at2(k * -1 + (n - 1), j).rd() * x.at2(k * -1 + n, j).rd()
                            + e_m.at2(k * -1 + (n - 1), j).rd()
                                * x.at2(k * -1 + (n + 1), j).rd())
                            / d.at2(k * -1 + (n - 1), j).rd(),
                );
            });
        });
    });

    pb.finish().expect("VPENTA builds a valid program")
}

/// Golden `X`, column-major, identical fp order.
pub fn golden(pr: &Params) -> Vec<f64> {
    let n = pr.n;
    let at = |i: usize, j: usize| i + j * n;
    let mut x = vec![0.0f64; n * n];
    let mut av = vec![0.0; n * n];
    let mut bv = vec![0.0; n * n];
    let mut cv = vec![0.0; n * n];
    let mut dv = vec![0.0; n * n];
    let mut ev = vec![0.0; n * n];
    let mut fv = vec![0.0; n * n];
    for j in 0..n {
        for i in 0..n {
            let (fi, fj) = (i as f64, j as f64);
            av[at(i, j)] = (fi + fj) * 0.0002 + -0.1;
            bv[at(i, j)] = (fi + fj) * 0.0001 + -0.2;
            cv[at(i, j)] = (fi + fj) * 0.0001 + -0.15;
            dv[at(i, j)] = (fi + fj) * 0.0005 + 4.0;
            ev[at(i, j)] = (fi + fj) * 0.0002 + -0.12;
            fv[at(i, j)] = fi * 0.002 + fj * -0.001 + 1.0;
        }
    }
    for j in 0..n {
        for i in 2..n {
            x[at(i, j)] = (fv[at(i, j)]
                - av[at(i, j)] * x[at(i - 2, j)]
                - bv[at(i, j)] * x[at(i - 1, j)])
                / dv[at(i, j)];
        }
    }
    for j in 0..n {
        for k in 2..n {
            let r = n - 1 - k;
            x[at(r, j)] -= (cv[at(r, j)] * x[at(r + 1, j)]
                + ev[at(r, j)] * x[at(r + 2, j)])
                / dv[at(r, j)];
        }
    }
    let _ = f_init;
    let _ = coef_init;
    x
}

/// Kernel descriptor.
pub fn spec(pr: &Params) -> KernelSpec {
    KernelSpec {
        name: "VPENTA",
        program: build(pr),
        check_array: "X",
        golden: golden(pr),
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::values_equal;
    use ccdp_core::{compare, PipelineConfig, Scheme};

    #[test]
    fn sequential_matches_golden() {
        let pr = Params::small();
        let s = spec(&pr);
        let r = ccdp_core::run_seq(&s.program, &PipelineConfig::t3d(1)).unwrap();
        let x = r.array_values(&s.program, s.program.array_by_name("X").unwrap().id);
        assert!(values_equal(&x, &s.golden), "mismatch");
    }

    #[test]
    fn everything_is_local_and_clean() {
        let pr = Params::small();
        let program = build(&pr);
        let art = ccdp_core::compile_ccdp(&program, &PipelineConfig::t3d(4));
        // Column-aligned work: the precise analysis proves every read clean
        // (the paper's more conservative analysis flagged some, but they
        // were local anyway — same traffic either way).
        assert_eq!(art.stale.n_stale(), 0);
    }

    #[test]
    fn ccdp_still_beats_base_via_overheads() {
        let pr = Params::small();
        let s = spec(&pr);
        let cmp = compare(&s.program, &PipelineConfig::t3d(4), &[Scheme::Base, Scheme::Ccdp])
            .expect("coherent");
        let xid = s.program.array_by_name("X").unwrap().id;
        let base = &cmp.get(Scheme::Base).unwrap().result;
        let ccdp = &cmp.get(Scheme::Ccdp).unwrap().result;
        assert!(values_equal(&base.array_values(&s.program, xid), &s.golden));
        assert!(values_equal(&ccdp.array_values(&s.program, xid), &s.golden));
        let imp = cmp.improvement_pct().unwrap();
        assert!(imp > 0.0, "{imp:.2}%");
        // Both speedups should be decent (the kernel is embarrassingly
        // parallel); CCDP strictly better.
        assert!(cmp.speedup(Scheme::Ccdp).unwrap() > cmp.speedup(Scheme::Base).unwrap());
    }
}
