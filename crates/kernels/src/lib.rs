//! The paper's four application kernels (SPEC CFP92 / CFP95) as CCDP IR
//! programs, each with a pure-Rust *golden reference* implementation used to
//! validate every simulated scheme bit-for-bit.
//!
//! | kernel  | suite        | structure (as in the paper §5.3)                   |
//! |---------|--------------|----------------------------------------------------|
//! | MXM     | CFP92/NASA7  | triple-nested matmul, middle loop parallel; block-distributed columns; remote reads of `A` dominate |
//! | VPENTA  | CFP92/NASA7  | pentadiagonal inversion; fully column-local work — BASE is already good, CCDP only removes CRAFT overhead |
//! | TOMCATV | CFP95        | mesh generation: stencil epoch (parallel outer) plus forward/backward sweeps with *serial outer / parallel inner* loops — heavy cross-PE traffic |
//! | SWIM    | CFP95        | shallow-water: three routines (CALC1..3) called per timestep; mostly-local column stencils |
//!
//! Every builder is parameterized by problem size so tests can run scaled-
//! down instances with exact golden comparison while the bench harness runs
//! the paper's full sizes.

pub mod mxm;
pub mod swim;
pub mod tomcatv;
pub mod vpenta;

use ccdp_ir::Program;

/// A ready-to-run kernel: program plus the golden value of its main output
/// array.
pub struct KernelSpec {
    pub name: &'static str,
    pub program: Program,
    /// Name of the array whose final contents identify a correct run.
    pub check_array: &'static str,
    /// Golden contents of `check_array` (column-major), for the iteration
    /// count baked into `program`.
    pub golden: Vec<f64>,
}

/// Compare two value slices exactly (same fp operation order everywhere).
pub fn values_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y || (x - y).abs() < 1e-12)
}

/// All four kernels at reduced sizes (fast: unit/integration tests).
pub fn small_suite() -> Vec<KernelSpec> {
    vec![
        mxm::spec(&mxm::Params::small()),
        vpenta::spec(&vpenta::Params::small()),
        tomcatv::spec(&tomcatv::Params::small()),
        swim::spec(&swim::Params::small()),
    ]
}
