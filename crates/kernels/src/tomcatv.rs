//! TOMCATV — vectorized mesh generation (SPEC CFP95).
//!
//! The paper's structure (§5.3, §5.4): 513×513 matrices, 100 time steps;
//! per step one doubly-nested loop with a **parallel outer** loop ("loop
//! 60", a neighbour stencil) and two doubly-nested loops with **parallel
//! inner / serial outer** structure ("loops 100 and 120", forward and
//! backward sweeps *across* the distributed columns). With the generalized
//! (column-block) distribution, the sweeps make every PE touch columns
//! owned by other PEs — the BASE version drowns in remote latency, and
//! CCDP's 45–69 % improvements come from caching + prefetching exactly
//! those references.

use ccdp_dist::{Distribution, Layout};
use ccdp_ir::{Program, ProgramBuilder};

use crate::KernelSpec;

/// Problem size and time steps.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    pub n: usize,
    pub iters: u32,
}

impl Params {
    /// The paper's configuration: 513×513, 100 iterations.
    pub fn paper() -> Params {
        Params { n: 513, iters: 100 }
    }

    pub fn small() -> Params {
        Params { n: 18, iters: 3 }
    }
}

/// Build the IR program.
pub fn build(pr: &Params) -> Program {
    let n = pr.n as i64;
    let mut pb = ProgramBuilder::new("tomcatv");
    let x = pb.shared("X", &[pr.n, pr.n]);
    let y = pb.shared("Y", &[pr.n, pr.n]);
    let rx = pb.shared("RX", &[pr.n, pr.n]);
    let ry = pb.shared("RY", &[pr.n, pr.n]);
    let aa = pb.shared("AA", &[pr.n, pr.n]);
    let dd = pb.shared("DD", &[pr.n, pr.n]);
    let d = pb.shared("D", &[pr.n, pr.n]);

    pb.parallel_epoch("init", |e| {
        e.doall_aligned("j0", 0, n - 1, &x, |e, j| {
            e.serial("i0", 0, n - 1, |e, i| {
                // Quadratic mesh: the discrete Laplacian is non-zero, so the
                // residuals carry real signal.
                e.assign(
                    x.at2(i, j),
                    i.val() * 0.01 + j.val() * 0.001
                        + i.val() * i.val() * 0.0001,
                );
                e.assign(
                    y.at2(i, j),
                    j.val() * 0.01 - i.val() * 0.001
                        + j.val() * j.val() * 0.0001,
                );
                e.assign(rx.at2(i, j), 0.0);
                e.assign(ry.at2(i, j), 0.0);
                e.assign(aa.at2(i, j), 0.0);
                e.assign(dd.at2(i, j), 0.0);
                e.assign(d.at2(i, j), 0.0);
            });
        });
    });

    pb.repeat(pr.iters, |rep| {
        // "Loop 60": residual stencil, parallel outer loop over columns.
        // X(i,j±1) crosses the column blocks -> potentially stale.
        rep.parallel_epoch("loop60", |e| {
            e.doall_aligned("j6", 1, n - 2, &x, |e, j| {
                e.serial("i6", 1, n - 2, |e, i| {
                    e.assign(
                        rx.at2(i, j),
                        x.at2(i - 1, j).rd() + x.at2(i + 1, j).rd()
                            + x.at2(i, j - 1).rd()
                            + x.at2(i, j + 1).rd()
                            - 4.0 * x.at2(i, j).rd(),
                    );
                    e.assign(
                        ry.at2(i, j),
                        y.at2(i - 1, j).rd() + y.at2(i + 1, j).rd()
                            + y.at2(i, j - 1).rd()
                            + y.at2(i, j + 1).rd()
                            - 4.0 * y.at2(i, j).rd(),
                    );
                });
            });
        });
        // "Loop 100": forward sweep along columns — serial outer j, parallel
        // inner i. RX/RY were written column-partitioned, are read here
        // row-partitioned -> potentially stale remote reads.
        rep.parallel_epoch("loop100", |e| {
            e.serial("jw", 2, n - 2, |e, j| {
                e.doall("i1", 1, n - 2, |e, i| {
                    e.assign(
                        aa.at2(i, j),
                        rx.at2(i, j).rd() - 0.25 * aa.at2(i, j - 1).rd(),
                    );
                    e.assign(
                        dd.at2(i, j),
                        ry.at2(i, j).rd() - 0.25 * dd.at2(i, j - 1).rd(),
                    );
                });
            });
        });
        // "Loop 120": backward sweep — serial outer, parallel inner,
        // descending column index (n-1-k).
        rep.parallel_epoch("loop120", |e| {
            e.serial("kw", 2, n - 2, |e, k| {
                e.doall("i2", 1, n - 2, |e, i| {
                    e.assign(
                        aa.at2(i, k * -1 + (n - 1)),
                        aa.at2(i, k * -1 + (n - 1)).rd()
                            - 0.25 * aa.at2(i, k * -1 + n).rd(),
                    );
                    e.assign(
                        dd.at2(i, k * -1 + (n - 1)),
                        dd.at2(i, k * -1 + (n - 1)).rd()
                            - 0.25 * dd.at2(i, k * -1 + n).rd(),
                    );
                });
            });
        });
        // Mesh update: parallel outer again; AA/DD were written
        // row-partitioned, read column-partitioned -> potentially stale.
        rep.parallel_epoch("update", |e| {
            e.doall_aligned("ju", 1, n - 2, &x, |e, j| {
                e.serial("iu", 1, n - 2, |e, i| {
                    e.assign(x.at2(i, j), x.at2(i, j).rd() + 0.1 * aa.at2(i, j).rd());
                    e.assign(y.at2(i, j), y.at2(i, j).rd() + 0.1 * dd.at2(i, j).rd());
                    e.assign(d.at2(i, j), aa.at2(i, j).rd() + dd.at2(i, j).rd());
                });
            });
        });
    });

    pb.finish().expect("TOMCATV builds a valid program")
}

/// Golden `X` after `iters` iterations (column-major, identical fp order).
pub fn golden_iters(pr: &Params, iters: u32) -> Vec<f64> {
    let n = pr.n;
    let at = |i: usize, j: usize| i + j * n;
    let mut x = vec![0.0f64; n * n];
    let mut y = vec![0.0f64; n * n];
    let mut rx = vec![0.0f64; n * n];
    let mut ry = vec![0.0f64; n * n];
    let mut aa = vec![0.0f64; n * n];
    let mut dd = vec![0.0f64; n * n];
    for j in 0..n {
        for i in 0..n {
            let (fi, fj) = (i as f64, j as f64);
            x[at(i, j)] = fi * 0.01 + fj * 0.001 + fi * fi * 0.0001;
            y[at(i, j)] = fj * 0.01 - fi * 0.001 + fj * fj * 0.0001;
        }
    }
    for _ in 0..iters {
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                rx[at(i, j)] = x[at(i - 1, j)] + x[at(i + 1, j)] + x[at(i, j - 1)]
                    + x[at(i, j + 1)]
                    - 4.0 * x[at(i, j)];
                ry[at(i, j)] = y[at(i - 1, j)] + y[at(i + 1, j)] + y[at(i, j - 1)]
                    + y[at(i, j + 1)]
                    - 4.0 * y[at(i, j)];
            }
        }
        for j in 2..n - 1 {
            for i in 1..n - 1 {
                aa[at(i, j)] = rx[at(i, j)] - 0.25 * aa[at(i, j - 1)];
                dd[at(i, j)] = ry[at(i, j)] - 0.25 * dd[at(i, j - 1)];
            }
        }
        for k in 2..n - 1 {
            let c = n - 1 - k;
            for i in 1..n - 1 {
                aa[at(i, c)] -= 0.25 * aa[at(i, c + 1)];
                dd[at(i, c)] -= 0.25 * dd[at(i, c + 1)];
            }
        }
        for j in 1..n - 1 {
            for i in 1..n - 1 {
                x[at(i, j)] += 0.1 * aa[at(i, j)];
                y[at(i, j)] += 0.1 * dd[at(i, j)];
            }
        }
    }
    x
}

/// The paper's layout for this kernel: CRAFT *generalized* distribution
/// (block mapping, expensive software address translation) on every array.
pub fn layout(program: &Program, n_pes: usize) -> Layout {
    let mut l = Layout::new(program, n_pes);
    for a in &program.arrays {
        l.set(a.id, Distribution::GeneralizedBlock { dim: a.rank() - 1 });
    }
    l
}

/// Kernel descriptor (golden for the full `iters` baked into the program).
pub fn spec(pr: &Params) -> KernelSpec {
    KernelSpec {
        name: "TOMCATV",
        program: build(pr),
        check_array: "X",
        golden: golden_iters(pr, pr.iters),
    }
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::values_equal;
    use ccdp_core::{compare, PipelineConfig, Scheme};

    #[test]
    fn sequential_matches_golden() {
        let pr = Params::small();
        let s = spec(&pr);
        let r = ccdp_core::run_seq(&s.program, &PipelineConfig::t3d(1)).unwrap();
        let x = r.array_values(&s.program, s.program.array_by_name("X").unwrap().id);
        assert!(values_equal(&x, &s.golden));
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sweeps_produce_stale_references() {
        let pr = Params::small();
        let program = build(&pr);
        let art = ccdp_core::compile_ccdp(&program, &PipelineConfig::t3d(4));
        // loop60's X/Y(i, j±1), loop100's RX/RY, update's AA/DD at least.
        assert!(art.stale.n_stale() >= 6, "stale: {}", art.stale.n_stale());
        assert!(art.plan.stats.targets > 0);
    }

    #[test]
    fn all_schemes_agree_and_ccdp_wins() {
        let pr = Params::small();
        let s = spec(&pr);
        let cmp = compare(&s.program, &PipelineConfig::t3d(4), &[Scheme::Base, Scheme::Ccdp])
            .expect("coherent");
        let xid = s.program.array_by_name("X").unwrap().id;
        let base = &cmp.get(Scheme::Base).unwrap().result;
        let ccdp = &cmp.get(Scheme::Ccdp).unwrap().result;
        assert!(values_equal(&base.array_values(&s.program, xid), &s.golden));
        assert!(values_equal(&ccdp.array_values(&s.program, xid), &s.golden));
        let imp = cmp.improvement_pct().unwrap();
        assert!(imp > 10.0, "TOMCATV should improve substantially: {imp:.1}%");
    }
}
