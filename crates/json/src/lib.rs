//! `ccdp-json`: a small, dependency-free JSON layer for the machine-readable
//! reports (`BENCH_ccdp.json` and friends).
//!
//! The workspace builds without network access, so serde is not available;
//! this crate provides the three pieces the observability layer needs:
//!
//! * a [`Json`] value model that preserves object key order (reports are
//!   diffed by humans, so stable field order matters),
//! * a writer ([`Json::to_string`] / [`Json::to_pretty`]) with full string
//!   escaping and round-trippable number formatting,
//! * a parser ([`parse`]) used by the schema round-trip tests.
//!
//! Conventions: integers are emitted as JSON integers; non-finite floats
//! (which JSON cannot represent) are emitted as `null`.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer number (covers every counter in the reports exactly).
    Int(i64),
    /// Unsigned integer too large for `Int`.
    UInt(u64),
    /// Floating-point number.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Build an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(v) if v >= 0 => Some(v as u64),
            Json::UInt(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            Json::Num(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Compact serialization.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (2-space indent).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, pairs.len(), '{', '}', |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

/// Rust's shortest-round-trip float formatting, adjusted so the output is
/// valid JSON (always has a digit before any exponent; non-finite → null).
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // `{}` prints integral floats without a fractional part; keep them
    // distinguishable from JSON integers when parsed back as Num → fine:
    // the parser maps "1.0"→Num but "1"→Int, so mark floats explicitly.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into [`Json`] (the serde-free analogue of `Serialize`).
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! impl_tojson_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
    )*};
}
impl_tojson_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        if *self <= i64::MAX as u64 {
            Json::Int(*self as i64)
        } else {
            Json::UInt(*self)
        }
    }
}
impl ToJson for usize {
    fn to_json(&self) -> Json {
        (*self as u64).to_json()
    }
}
impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}
impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts. The parser is recursive,
/// so without a limit a few kilobytes of `[[[[…` overflow the stack; 128
/// levels is far beyond any report document while keeping worst-case stack
/// use trivially bounded.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parse a JSON document (used by the schema round-trip tests and the
/// report/journal readers). Adversarial input — deep nesting, truncated
/// escapes, malformed numbers — yields a [`ParseError`], never a panic.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Write `contents` to `path` atomically: write a temp file in the same
/// directory, then rename over the target. A crash (or SIGKILL) at any
/// point leaves either the old document or the new one — never a torn
/// half-write. Used for `BENCH_ccdp.json` so a killed run cannot corrupt
/// the committed report or the perf-gate baseline.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let write_synced = |tmp: &std::path::Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(tmp)?;
        f.write_all(contents.as_bytes())?;
        // The data must be on disk *before* the rename publishes it: a
        // rename can be durable while the renamed file's bytes are not,
        // which is exactly the torn state this function exists to prevent.
        f.sync_all()
    };
    if let Err(e) = write_synced(&tmp) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Rename durability needs the directory entry flushed too; best
    // effort — not all platforms allow opening a directory for sync.
    if let Some(d) = dir {
        if let Ok(f) = std::fs::File::open(d) {
            let _ = f.sync_all();
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting (see [`MAX_PARSE_DEPTH`]).
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.array_inner();
        self.depth -= 1;
        r
    }

    fn array_inner(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.object_inner();
        self.depth -= 1;
        r
    }

    fn object_inner(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            s.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain characters at once. The
                    // delimiters (`"`, `\`) are ASCII and the input came from
                    // a &str, so the span lies on char boundaries; validating
                    // per character would make parsing quadratic in the
                    // document size.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let span = &self.bytes[start..self.pos];
                    let text = std::str::from_utf8(span).map_err(|_| self.err("bad utf-8"))?;
                    s.push_str(text);
                }
            }
        }
    }

    /// `\uXXXX`, including surrogate pairs. On entry `pos` is at the 'u'.
    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hex4 = |p: &mut Parser<'a>| -> Result<u32, ParseError> {
            p.pos += 1; // consume 'u'
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| p.err("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("bad \\u escape"))?;
            p.pos = end;
            Ok(v)
        };
        let hi = hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Expect a low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = hex4(self)?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("bad surrogate"));
                    }
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| ParseError { offset: start, message: "bad number".into() })
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn writer_shapes() {
        let j = Json::obj([
            ("name", Json::Str("MXM".into())),
            ("cycles", Json::Int(12345)),
            ("ratio", Json::Num(0.5)),
            ("flags", Json::arr([Json::Bool(true), Json::Null])),
            ("empty_obj", Json::obj::<String>([])),
            ("empty_arr", Json::arr([])),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"MXM","cycles":12345,"ratio":0.5,"flags":[true,null],"empty_obj":{},"empty_arr":[]}"#
        );
        let pretty = j.to_pretty();
        assert!(pretty.contains("\n  \"name\": \"MXM\","));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{01} unicode→日本 emoji🦀";
        let j = Json::Str(nasty.into());
        let parsed = parse(&j.to_string()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn numbers_round_trip() {
        for v in [0.0, -1.5, 1e-9, std::f64::consts::PI, 1e300, 123456789.25] {
            let parsed = parse(&Json::Num(v).to_string()).unwrap();
            assert_eq!(parsed, Json::Num(v), "{v}");
        }
        assert_eq!(parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(parse(&Json::Num(2.0).to_string()).unwrap(), Json::Num(2.0));
        // Non-finite floats degrade to null (JSON has no representation).
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parser_accepts_escapes_and_rejects_garbage() {
        assert_eq!(
            parse(r#""Aé🦀""#).unwrap(),
            Json::Str("Aé🦀".into())
        );
        for bad in ["{", "[1,", "\"unterminated", "nul", "1.2.3", "{\"a\" 1}", "[] []"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
        // Plain-character runs interleaved with escapes (the bulk string
        // fast path must stop exactly at `"` and `\`).
        assert_eq!(
            parse(r#""héllo\n🦀 wörld\"x""#).unwrap(),
            Json::Str("héllo\n🦀 wörld\"x".into())
        );
    }

    /// Parsing must be linear in document size: a megabyte-scale string
    /// (the shape of `BENCH_ccdp.json`'s table blobs) parses in well under
    /// a second, where a quadratic parser takes minutes.
    #[test]
    fn parser_is_linear_on_large_strings() {
        let body = "x".repeat(2_000_000);
        let doc = format!("[\"{body}\", \"{body}\"]");
        let t0 = std::time::Instant::now();
        let j = parse(&doc).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "large-string parse took {:?}",
            t0.elapsed()
        );
        assert_eq!(j.items()[0].as_str().map(str::len), Some(2_000_000));
    }

    #[test]
    fn tojson_primitives() {
        assert_eq!(5u64.to_json(), Json::Int(5));
        assert_eq!(u64::MAX.to_json(), Json::UInt(u64::MAX));
        assert_eq!((-3i64).to_json(), Json::Int(-3));
        assert_eq!("s".to_json(), Json::Str("s".into()));
        assert_eq!(vec![1u32, 2].to_json(), Json::arr([Json::Int(1), Json::Int(2)]));
        assert_eq!(None::<u32>.to_json(), Json::Null);
        let deep = parse(&vec![vec![1u8]].to_json().to_pretty()).unwrap();
        assert_eq!(deep, Json::arr([Json::arr([Json::Int(1)])]));
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Just inside the limit parses; past it errors; a pathological
        // 100k-deep bomb errors quickly rather than blowing the stack.
        let ok = format!("{}1{}", "[".repeat(MAX_PARSE_DEPTH), "]".repeat(MAX_PARSE_DEPTH));
        assert!(parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH + 1),
            "]".repeat(MAX_PARSE_DEPTH + 1)
        );
        let e = parse(&over).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).is_err());
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(parse(&obj_bomb).is_err());
        // Siblings don't accumulate depth: a long flat array is fine.
        let flat = format!("[{}1]", "1,".repeat(10_000));
        assert!(parse(&flat).is_ok());
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("ccdp-json-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.json");
        write_atomic(&path, "{\"v\":1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}\n");
        write_atomic(&path, "{\"v\":2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_and_items_navigate() {
        let j = parse(r#"{"a": {"b": [1, 2.5, "x"]}}"#).unwrap();
        let arr = j.get("a").unwrap().get("b").unwrap();
        assert_eq!(arr.items().len(), 3);
        assert_eq!(arr.items()[0].as_u64(), Some(1));
        assert_eq!(arr.items()[1].as_f64(), Some(2.5));
        assert_eq!(arr.items()[2].as_str(), Some("x"));
        assert_eq!(j.get("missing"), None);
    }
}
