//! Writing your own kernel: a Jacobi relaxation over a 2-D grid, built with
//! the IR builder, validated against a plain-Rust reference, and swept over
//! PE counts under all three schemes.
//!
//! ```text
//! cargo run -p ccdp-bench --release --example write_your_own_kernel
//! ```

use ccdp_core::{compare, PipelineConfig, Scheme};
use ccdp_ir::{Program, ProgramBuilder};
use t3d_sim::SimOptions;

const N: usize = 128;
const STEPS: u32 = 20;

/// u_{t+1}(i,j) = 0.25 * (u_t(i±1,j) + u_t(i,j±1)), double-buffered.
fn build() -> Program {
    let n = N as i64;
    let mut pb = ProgramBuilder::new("jacobi");
    let u = pb.shared("U", &[N, N]);
    let v = pb.shared("V", &[N, N]);

    pb.parallel_epoch("init", |e| {
        e.doall_aligned("j0", 0, n - 1, &u, |e, j| {
            e.serial("i0", 0, n - 1, |e, i| {
                e.assign(u.at2(i, j), i.val() * 0.003 + j.val() * j.val() * 0.0001);
                e.assign(v.at2(i, j), 0.0);
            });
        });
    });
    pb.repeat(STEPS, |rep| {
        rep.parallel_epoch("sweep_uv", |e| {
            e.doall_aligned("j1", 1, n - 2, &v, |e, j| {
                e.serial("i1", 1, n - 2, |e, i| {
                    e.assign(
                        v.at2(i, j),
                        (u.at2(i - 1, j).rd()
                            + u.at2(i + 1, j).rd()
                            + u.at2(i, j - 1).rd()
                            + u.at2(i, j + 1).rd())
                            * 0.25,
                    );
                });
            });
        });
        rep.parallel_epoch("sweep_vu", |e| {
            e.doall_aligned("j2", 1, n - 2, &u, |e, j| {
                e.serial("i2", 1, n - 2, |e, i| {
                    e.assign(
                        u.at2(i, j),
                        (v.at2(i - 1, j).rd()
                            + v.at2(i + 1, j).rd()
                            + v.at2(i, j - 1).rd()
                            + v.at2(i, j + 1).rd())
                            * 0.25,
                    );
                });
            });
        });
    });
    pb.finish().expect("valid kernel")
}

/// Plain-Rust reference with identical fp order.
fn golden() -> Vec<f64> {
    let at = |i: usize, j: usize| i + j * N;
    let mut u = vec![0.0f64; N * N];
    let mut v = vec![0.0f64; N * N];
    for j in 0..N {
        for i in 0..N {
            u[at(i, j)] = i as f64 * 0.003 + (j * j) as f64 * 0.0001;
        }
    }
    for _ in 0..STEPS {
        for j in 1..N - 1 {
            for i in 1..N - 1 {
                v[at(i, j)] =
                    (u[at(i - 1, j)] + u[at(i + 1, j)] + u[at(i, j - 1)] + u[at(i, j + 1)])
                        * 0.25;
            }
        }
        for j in 1..N - 1 {
            for i in 1..N - 1 {
                u[at(i, j)] =
                    (v[at(i - 1, j)] + v[at(i + 1, j)] + v[at(i, j - 1)] + v[at(i, j + 1)])
                        * 0.25;
            }
        }
    }
    u
}

fn main() {
    let program = build();
    let want = golden();
    let uid = program.array_by_name("U").unwrap().id;

    println!("Jacobi {N}x{N}, {STEPS} steps:");
    println!(
        "{:>5} {:>10} {:>10} {:>12} {:>10}",
        "#PEs", "BASE", "CCDP", "improvement", "check"
    );
    for n_pes in [1usize, 2, 4, 8, 16, 32] {
        let mut cfg = PipelineConfig::t3d(n_pes);
        cfg.sim = SimOptions::default(); // run all steps (exact numerics)
        let m = compare(&program, &cfg, &[Scheme::Base, Scheme::Ccdp]).expect("coherent");
        let ccdp = &m.get(Scheme::Ccdp).unwrap().result;
        let got = ccdp.array_values(&program, uid);
        let ok = got == want;
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>11.2}% {:>10}",
            n_pes,
            m.speedup(Scheme::Base).unwrap(),
            m.speedup(Scheme::Ccdp).unwrap(),
            m.improvement_pct().unwrap(),
            if ok { "exact" } else { "MISMATCH" }
        );
        assert!(ok, "numerics must match the plain-Rust reference");
        assert!(ccdp.oracle.is_coherent());
    }
}
