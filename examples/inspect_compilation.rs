//! Inspecting the CCDP compilation pipeline on TOMCATV: which references
//! the stale reference analysis flags (and why), what the target analysis
//! keeps, which scheduling technique covers each target, and what the
//! transformed program looks like.
//!
//! ```text
//! cargo run -p ccdp-bench --release --example inspect_compilation
//! ```

use ccdp_analysis::StaleReason;
use ccdp_core::{compile_ccdp, PipelineConfig};
use ccdp_ir::{collect_refs_in_stmts, RefAccess};
use ccdp_kernels::tomcatv;

fn main() {
    let pr = tomcatv::Params { n: 20, iters: 2 };
    let program = tomcatv::build(&pr);
    let n_pes = 4;
    let mut cfg = PipelineConfig::t3d(n_pes);
    cfg.layout = Some(tomcatv::layout(&program, n_pes));

    let art = compile_ccdp(&program, &cfg);

    println!("== stale reference analysis (P={n_pes}) ==");
    println!(
        "{} of {} shared reads are potentially stale\n",
        art.stale.n_stale(),
        art.stale.n_shared_reads
    );
    for epoch in program.epochs() {
        let mut lines = Vec::new();
        for cr in collect_refs_in_stmts(&epoch.stmts) {
            if cr.access != RefAccess::Read {
                continue;
            }
            let name = &program.array(cr.r.array).name;
            let why = match art.stale.stale[cr.r.id.index()] {
                None => continue,
                Some(StaleReason::ForeignWriteEarlierEpoch) => "foreign write, earlier epoch",
                Some(StaleReason::CrossPhaseSameEpoch) => "cross-phase (same epoch)",
                Some(StaleReason::Conservative) => "conservative (unknown mapping)",
            };
            let idx: Vec<String> = cr
                .r
                .index
                .iter()
                .map(|a| ccdp_ir::print::fmt_affine(&program, a))
                .collect();
            lines.push(format!("  r{:<3} {}({:<12}) {}", cr.r.id.0, name, idx.join(","), why));
        }
        if !lines.is_empty() {
            println!("epoch '{}':", epoch.label);
            for l in lines {
                println!("{l}");
            }
        }
    }

    println!("\n== prefetch plan ==\n{:#?}", art.plan.stats);
    let mut techs: Vec<_> = art.plan.technique.iter().collect();
    techs.sort_by_key(|(r, _)| r.0);
    for (rid, t) in techs {
        println!("  r{:<3} covered by {:?}", rid.0, t);
    }

    println!("\n== transformed program ==");
    println!("{}", ccdp_ir::print_program(&art.transformed));
}
