//! Quickstart: write a tiny parallel program, let the CCDP pipeline enforce
//! coherence with prefetching, and compare every coherence backend — the
//! software schemes (BASE, CCDP, invalidate-only) and the hardware rivals
//! (snooping MESI, update-based Dragon) — through the one `compare` call.
//!
//! ```text
//! cargo run -p ccdp-bench --release --example quickstart
//! ```

use ccdp_core::{compare, PipelineConfig, Scheme};
use ccdp_ir::ProgramBuilder;

fn main() {
    // A two-epoch program: one epoch produces A in parallel, the next reads
    // it back *reversed*, so most of what each PE reads was written by a
    // different PE — the classic stale-reference situation.
    let n = 512usize;
    let mut pb = ProgramBuilder::new("quickstart");
    let a = pb.shared("A", &[n]);
    let b = pb.shared("B", &[n]);

    pb.parallel_epoch("produce", |e| {
        e.doall_aligned("i", 0, n as i64 - 1, &a, |e, i| {
            e.assign(a.at1(i), i.val() * 0.25 + 1.0);
        });
    });
    pb.parallel_epoch("consume_reversed", |e| {
        e.doall_aligned("i", 0, n as i64 - 1, &b, |e, i| {
            e.assign(b.at1(i), a.at1((n as i64 - 1) - i).rd() * 2.0);
        });
    });
    let program = pb.finish().expect("valid program");

    println!("--- the program ---\n{}", ccdp_ir::print_program(&program));

    for n_pes in [1usize, 4, 16] {
        let m = compare(&program, &PipelineConfig::t3d(n_pes), &Scheme::ALL).expect("coherent");
        print!("P={:>2}: SEQ {:>9} cy, speedups:", n_pes, m.seq.cycles);
        for run in &m.runs {
            print!(" {} {:>5.2}x", run.scheme.name(), m.speedup(run.scheme).unwrap());
        }
        println!(
            " | CCDP improvement {:>6.2}% | stale refs {} | every backend coherent",
            m.improvement_pct().unwrap(),
            m.stale_reads,
        );
    }

    // The simulated runs carry real data: check the numbers.
    let m = compare(&program, &PipelineConfig::t3d(8), &Scheme::ALL).expect("coherent");
    let bid = program.array_by_name("B").unwrap().id;
    let vals = m.get(Scheme::Ccdp).unwrap().result.array_values(&program, bid);
    assert_eq!(vals[0], ((n - 1) as f64 * 0.25 + 1.0) * 2.0);
    println!("\nB(0) = {} (= 2 * A({}) as expected)", vals[0], n - 1);
}
