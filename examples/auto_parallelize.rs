//! The Polaris step: start from a fully *serial* program, let the
//! auto-parallelizer find the DOALL loops, then run CCDP on the result —
//! the complete front-to-back pipeline of the paper's methodology (§5.2).
//!
//! ```text
//! cargo run -p ccdp-bench --release --example auto_parallelize
//! ```

use ccdp_analysis::auto_parallelize;
use ccdp_core::{compare, PipelineConfig, Scheme};
use ccdp_ir::{parse_program, print_program};

const SERIAL_SOURCE: &str = "\
program serial_app
  shared A(64,64)
  shared B(64,64)
  epoch init (serial):
    do j0 = 0, 63
      do i0 = 0, 63
        A(i0,j0) = $i0*0.01 + 1
        B(i0,j0) = 0
  epoch stencil (serial):
    do j = 1, 62
      do i = 1, 62
        B(i,j) = (A(i,j-1) + A(i,j+1))*0.25
  epoch sweep (serial):
    do jw = 1, 63
      do i2 = 0, 63
        A(i2,jw) = A(i2,jw-1)*0.5 + B(i2,jw)*0.25
  epoch reduce (serial):
    do k = 0, 63
      A(0,0) = A(0,0) + B(k,k)
";

fn main() {
    let serial = parse_program(SERIAL_SOURCE).expect("parses");
    let (parallel, report) = auto_parallelize(&serial);

    println!("== parallelization report ==");
    for d in &report.decisions {
        println!(
            "  loop L{} over {}: {} ({})",
            d.loop_id.0,
            parallel.var_name(d.var),
            if d.parallelized { "DOALL" } else { "serial" },
            d.reason
        );
    }
    println!("{} of 4 epochs parallelized\n", report.epochs_parallelized);

    println!("== parallelized program ==\n{}", print_program(&parallel));

    // Same numbers as the serial original, faster under CCDP.
    let cfg = PipelineConfig::t3d(8);
    let serial_ref = ccdp_core::run_seq(&serial, &cfg).expect("valid config");
    let m = compare(&parallel, &cfg, &[Scheme::Base, Scheme::Ccdp]).expect("coherent");
    let aid = serial.array_by_name("A").unwrap().id;
    assert_eq!(
        serial_ref.array_values(&serial, aid),
        m.get(Scheme::Ccdp).unwrap().result.array_values(&parallel, aid),
        "auto-parallelization must preserve semantics"
    );
    println!(
        "P=8: BASE {:.2}x, CCDP {:.2}x over sequential; improvement {:.1}%; results identical",
        m.speedup(Scheme::Base).unwrap(),
        m.speedup(Scheme::Ccdp).unwrap(),
        m.improvement_pct().unwrap()
    );
}
