//! The coherence oracle in action: the same program executed with a correct
//! CCDP plan (zero violations, exact numerics) and with a sabotaged plan
//! (violations recorded, visibly wrong results).
//!
//! ```text
//! cargo run -p ccdp-bench --release --example coherence_oracle
//! ```

use ccdp_core::{compile_ccdp, run_seq, PipelineConfig};
use ccdp_ir::ProgramBuilder;
use ccdp_prefetch::Handling;
use t3d_sim::{MachineConfig, Scheme, SimOptions, Simulator};

fn main() {
    // A ping-pong kernel: each timestep, B is computed from reversed A,
    // then A is recomputed from B. Reversal makes most reads foreign, and
    // the repeat keeps old copies in the caches — ideal stale-read bait.
    let n = 64usize;
    let mut pb = ProgramBuilder::new("pingpong");
    let a = pb.shared("A", &[n]);
    let b = pb.shared("B", &[n]);
    pb.parallel_epoch("init", |e| {
        e.doall_aligned("i0", 0, n as i64 - 1, &a, |e, i| {
            e.assign(a.at1(i), i.val() + 1.0);
            e.assign(b.at1(i), 0.0);
        });
    });
    pb.repeat(4, |rep| {
        rep.parallel_epoch("fwd", |e| {
            e.doall_aligned("i1", 0, n as i64 - 1, &b, |e, i| {
                e.assign(b.at1(i), a.at1((n as i64 - 1) - i).rd() * 0.5);
            });
        });
        rep.parallel_epoch("bwd", |e| {
            e.doall_aligned("i2", 0, n as i64 - 1, &a, |e, i| {
                e.assign(a.at1(i), b.at1((n as i64 - 1) - i).rd() + 1.0);
            });
        });
    });
    let program = pb.finish().unwrap();

    let n_pes = 4;
    let cfg = PipelineConfig::t3d(n_pes);
    let art = compile_ccdp(&program, &cfg);
    let seq = run_seq(&program, &cfg).expect("valid config");
    let aid = program.array_by_name("A").unwrap().id;
    let want = seq.array_values(&program, aid);

    // Correct plan.
    let good = Simulator::new(
        &art.transformed,
        cfg.layout_for(&program),
        MachineConfig::t3d(n_pes),
        Scheme::Ccdp { plan: art.plan.clone() },
        SimOptions { oracle_examples: 4, ..Default::default() },
    )
    .run();
    println!(
        "correct plan : coherent={} stale_reads={} A(0)={} (expected {})",
        good.oracle.is_coherent(),
        good.oracle.stale_reads,
        good.array_values(&art.transformed, aid)[0],
        want[0]
    );
    assert!(good.oracle.is_coherent());
    assert_eq!(good.array_values(&art.transformed, aid), want);

    // Sabotaged plan: pretend every read is safe, run the *original*
    // program so no prefetch refreshes the caches either.
    let mut bad_plan = art.plan.clone();
    for h in bad_plan.handling.iter_mut() {
        *h = Handling::Normal;
    }
    let bad = Simulator::new(
        &program,
        cfg.layout_for(&program),
        MachineConfig::t3d(n_pes),
        Scheme::Ccdp { plan: bad_plan },
        SimOptions { oracle_examples: 4, ..Default::default() },
    )
    .run();
    println!(
        "broken plan  : coherent={} stale_reads={} A(0)={} (expected {})",
        bad.oracle.is_coherent(),
        bad.oracle.stale_reads,
        bad.array_values(&program, aid)[0],
        want[0]
    );
    println!("first violations:");
    for ex in &bad.oracle.examples {
        println!(
            "  PE{} read addr {} via r{} at phase {}: cached v{} < memory v{}",
            ex.pe, ex.addr, ex.reference.0, ex.phase, ex.cached_version, ex.memory_version
        );
    }
    assert!(!bad.oracle.is_coherent());
    assert_ne!(bad.array_values(&program, aid), want);
    println!("\nthe oracle catches what the paper's scheme must prevent.");
}
