//! Kernels as text: parse a program from the textual IR format, run the
//! CCDP pipeline on it, and print the transformed result.
//!
//! ```text
//! cargo run -p ccdp-bench --release --example parse_and_run
//! ```

use ccdp_core::{compare, PipelineConfig, Scheme};
use ccdp_ir::{parse_program, print_program};

const SOURCE: &str = "\
program wavefront
  shared U(96,96)
  shared F(96,96)
  epoch init (serial):
    do j0 = 0, 95
      do i0 = 0, 95
        U(i0,j0) = $i0*0.01 + $j0*$j0*0.0001
        F(i0,j0) = 1
  repeat 6 times:
    epoch sweep (parallel):
      do jw = 1, 94
        doall(static) i = 1, 94
          U(i,jw) = U(i,jw-1)*0.25 + F(i,jw)*0.5 + U(i-1,jw-1)*0.125
    epoch relax (parallel):
      doall(static) j = 1, 94 align U
        do i2 = 1, 94
          F(i2,j) = (U(i2,j-1) + U(i2,j+1))*0.5 - U(i2,j)
";

fn main() {
    let program = parse_program(SOURCE).expect("source parses");
    println!("parsed `{}` with {} epochs\n", program.name, program.epochs().len());

    for n_pes in [2usize, 8, 32] {
        let m = compare(&program, &PipelineConfig::t3d(n_pes), &[Scheme::Base, Scheme::Ccdp])
            .expect("coherent");
        println!(
            "P={:>2}: BASE speedup {:>5.2} | CCDP speedup {:>5.2} | improvement {:>6.2}% | coherent {}",
            n_pes,
            m.speedup(Scheme::Base).unwrap(),
            m.speedup(Scheme::Ccdp).unwrap(),
            m.improvement_pct().unwrap(),
            m.get(Scheme::Ccdp).unwrap().result.oracle.is_coherent()
        );
    }

    let art = ccdp_core::compile_ccdp(&program, &PipelineConfig::t3d(8));
    println!("\n--- transformed (P=8) ---\n{}", print_program(&art.transformed));

    // And the text format round-trips.
    let again = parse_program(&print_program(&program)).unwrap();
    assert_eq!(print_program(&program), print_program(&again));
    println!("round-trip: ok");
}
